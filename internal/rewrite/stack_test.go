package rewrite

import (
	"testing"

	"smoqe/internal/dtd"
	"smoqe/internal/hospital"
	"smoqe/internal/hype"
	"smoqe/internal/mfa"
	"smoqe/internal/refeval"
	"smoqe/internal/view"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

// publicView is a second-level view defined ON TOP of the σ0 view: the
// public-statistics office may only see, per exposed patient, the
// diagnoses in the patient's whole family line — not even the hierarchy
// shape. Its source DTD is σ0's TARGET DTD.
func publicView(t *testing.T) *view.View {
	t.Helper()
	tgt := dtd.MustParse(`dtd public {
		root hospital;
		hospital -> case*;
		case -> diagnosis*;
		diagnosis -> #text;
	}`)
	return view.MustParse(`view public {
		hospital/case = patient;
		case/diagnosis = (parent/patient)*/record/diagnosis;
	}`, hospital.ViewDTD(), tgt)
}

// TestStackedViews checks the composition property: for σ1 = σ0 (hospital →
// view) and σ2 = public (view → public), rewriting a public query through
// σ2 and then through σ1 answers it directly on the hospital document:
// Q(σ2(σ1(T))) = RewriteMFA(σ1, Rewrite(σ2, Q))(T).
func TestStackedViews(t *testing.T) {
	sigma1 := hospital.Sigma0()
	sigma2 := publicView(t)
	doc := hospital.SampleDocument()

	// Ground truth by double materialization with provenance composition.
	mat1, err := view.Materialize(sigma1, doc)
	if err != nil {
		t.Fatal(err)
	}
	mat2, err := view.Materialize(sigma2, mat1.Doc)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		".",
		"case",
		"case/diagnosis",
		"case[diagnosis/text()='heart disease']",
		"case[not(diagnosis/text()='heart disease')]",
		"**",
		"case[diagnosis]",
	}
	for _, qsrc := range queries {
		q := xpath.MustParse(qsrc)
		// Expected: answers on σ2(σ1(T)), mapped view2 → view1 → source.
		level2 := refeval.Eval(q, mat2.Doc.Root)
		level1 := mat2.SourceOf(level2)
		want := mat1.SourceOf(level1)

		m2, err := Rewrite(sigma2, q) // MFA over D_V1
		if err != nil {
			t.Fatalf("query %q: inner rewrite: %v", qsrc, err)
		}
		m, err := RewriteMFA(sigma1, m2) // MFA over D
		if err != nil {
			t.Fatalf("query %q: outer rewrite: %v", qsrc, err)
		}
		for name, got := range map[string][]*xmltree.Node{
			"mfa.Eval": mfa.Eval(m, doc.Root),
			"HyPE":     hype.New(m).Eval(doc.Root),
		} {
			if len(got) != len(want) {
				t.Fatalf("query %q (%s): got %d source nodes %v, want %d %v",
					qsrc, name, len(got), ids(got), len(want), ids(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("query %q (%s): node %d: %s vs %s",
						qsrc, name, i, got[i].Path(), want[i].Path())
				}
			}
		}
	}
}

// TestStackedSecurity: the public view hides everything but diagnoses; a
// query trying to reach records or parents through the stack returns
// nothing, even though both exist in the intermediate view and the source.
func TestStackedSecurity(t *testing.T) {
	sigma1 := hospital.Sigma0()
	sigma2 := publicView(t)
	doc := hospital.SampleDocument()
	for _, qsrc := range []string{"case/record", "case/parent", "patient", "//pname"} {
		m2, err := Rewrite(sigma2, xpath.MustParse(qsrc))
		if err != nil {
			t.Fatalf("%q: %v", qsrc, err)
		}
		m, err := RewriteMFA(sigma1, m2)
		if err != nil {
			t.Fatalf("%q: %v", qsrc, err)
		}
		if got := mfa.Eval(m, doc.Root); len(got) != 0 {
			t.Errorf("query %q must see nothing through the stack, got %d", qsrc, len(got))
		}
	}
}

// TestRewriteMFARejectsPosition covers the automaton-level position check.
func TestRewriteMFARejectsPosition(t *testing.T) {
	m := mfa.MustCompile(xpath.MustParse("patient[record/position()=1]"))
	if _, err := RewriteMFA(hospital.Sigma0(), m); err == nil {
		t.Error("position() predicate must be rejected at the MFA level")
	}
}

func ids(ns []*xmltree.Node) []int { return xmltree.IDsOf(ns) }
