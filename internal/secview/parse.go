package secview

import (
	"fmt"
	"strings"

	"smoqe/internal/xpath"
)

// ParsePolicy reads a policy in the textual format:
//
//	policy {
//	  deny department, name, address;
//	  deny doctor;
//	  cond patient = visit/treatment/medication/diagnosis/text()='heart disease';
//	  allow visit;   # the default; listed for documentation
//	}
//
// "#" starts a line comment ("//" would be ambiguous with the descendant
// axis inside cond filters). Unlisted types default to allow.
func ParsePolicy(src string) (Policy, error) {
	p := Policy{}
	s := strings.TrimSpace(stripComments(strings.ReplaceAll(src, "\r\n", "\n")))
	if !strings.HasPrefix(s, "policy") {
		return nil, fmt.Errorf(`secview: expected keyword "policy"`)
	}
	s = strings.TrimSpace(strings.TrimPrefix(s, "policy"))
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("secview: expected policy body in braces")
	}
	body := s[1 : len(s)-1]
	for _, stmt := range splitStatements(body) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "deny "):
			for _, t := range strings.Split(strings.TrimPrefix(stmt, "deny "), ",") {
				t = strings.TrimSpace(t)
				if t == "" {
					return nil, fmt.Errorf("secview: empty type in deny list")
				}
				if _, dup := p[t]; dup {
					return nil, fmt.Errorf("secview: type %q listed twice", t)
				}
				p[t] = Rule{Action: Deny}
			}
		case strings.HasPrefix(stmt, "allow "):
			for _, t := range strings.Split(strings.TrimPrefix(stmt, "allow "), ",") {
				t = strings.TrimSpace(t)
				if t == "" {
					return nil, fmt.Errorf("secview: empty type in allow list")
				}
				if _, dup := p[t]; dup {
					return nil, fmt.Errorf("secview: type %q listed twice", t)
				}
				p[t] = Rule{Action: Allow}
			}
		case strings.HasPrefix(stmt, "cond "):
			rest := strings.TrimPrefix(stmt, "cond ")
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return nil, fmt.Errorf("secview: cond needs \"type = filter\"")
			}
			t := strings.TrimSpace(rest[:eq])
			if t == "" {
				return nil, fmt.Errorf("secview: cond without a type")
			}
			if _, dup := p[t]; dup {
				return nil, fmt.Errorf("secview: type %q listed twice", t)
			}
			cond, err := xpath.ParsePred(strings.TrimSpace(rest[eq+1:]))
			if err != nil {
				return nil, fmt.Errorf("secview: cond %s: %w", t, err)
			}
			p[t] = Rule{Action: Cond, Filter: cond}
		default:
			return nil, fmt.Errorf("secview: unknown statement %q", stmt)
		}
	}
	return p, nil
}

// stripComments removes # comments that are outside quoted strings.
func stripComments(s string) string {
	var b strings.Builder
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
			b.WriteByte(c)
		case c == '\'' || c == '"':
			quote = c
			b.WriteByte(c)
		case c == '#':
			for i < len(s) && s[i] != '\n' {
				i++
			}
			if i < len(s) {
				b.WriteByte('\n')
			}
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// splitStatements splits on ';' outside quoted strings.
func splitStatements(s string) []string {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ';':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
