package secview_test

import (
	"strings"
	"testing"

	"smoqe/internal/dtd"
	"smoqe/internal/hospital"
	"smoqe/internal/hype"
	"smoqe/internal/refeval"
	"smoqe/internal/rewrite"
	"smoqe/internal/secview"
	"smoqe/internal/view"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

func deny(types ...string) secview.Policy {
	p := secview.Policy{}
	for _, t := range types {
		p[t] = secview.Rule{Action: secview.Deny}
	}
	return p
}

// hospitalPolicy hides everything identifying: departments (promoting
// patients), names, addresses, treatment internals (promoting diagnoses),
// doctors and dates.
func hospitalPolicy() secview.Policy {
	return deny(
		"department", "name", "pname", "address", "street", "city", "zip",
		"treatment", "test", "medication", "type",
		"doctor", "dname", "specialty", "date", "sibling",
	)
}

func TestDeriveHospitalView(t *testing.T) {
	d := hospital.DocDTD()
	v, err := secview.Derive(d, hospitalPolicy())
	if err != nil {
		t.Fatal(err)
	}
	// Derived annotations: through-department extraction and the
	// promoted treatment chain.
	if q := v.Query("hospital", "patient"); q == nil || q.String() != "department/patient" {
		t.Errorf("σ(hospital,patient) = %v", q)
	}
	if q := v.Query("visit", "diagnosis"); q == nil || q.String() != "treatment/medication/diagnosis" {
		t.Errorf("σ(visit,diagnosis) = %v", q)
	}
	// Denied sibling promotes its patient: patient gains a patient child.
	if q := v.Query("patient", "patient"); q == nil || q.String() != "sibling/patient" {
		t.Errorf("σ(patient,patient) = %v", q)
	}
	// The view DTD is recursive (parent/patient plus promoted siblings).
	if !v.Target.IsRecursive() {
		t.Error("derived view must be recursive")
	}

	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Target.CheckDocument(mat.Doc); err != nil {
		t.Fatalf("derived view output invalid: %v", err)
	}
	// Hidden labels never appear.
	hidden := hospitalPolicy()
	mat.Doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element {
			if _, bad := hidden[n.Label]; bad {
				t.Errorf("denied label %q leaked", n.Label)
			}
		}
		return true
	})

	// Rewriting over the derived view is exact.
	for _, qsrc := range []string{
		"patient",
		"patient/visit/diagnosis",
		"patient[visit/diagnosis/text()='heart disease']",
		"(patient/parent)*/patient/visit/diagnosis",
		"patient/patient", // the promoted sibling
		"**",
	} {
		q := xpath.MustParse(qsrc)
		want := mat.SourceOf(refeval.Eval(q, mat.Doc.Root))
		m, err := rewrite.Rewrite(v, q)
		if err != nil {
			t.Fatalf("rewrite %q: %v", qsrc, err)
		}
		got := hype.New(m).Eval(doc.Root)
		if len(got) != len(want) {
			t.Errorf("query %q: %d vs %d", qsrc, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("query %q: node %d differs", qsrc, i)
			}
		}
	}
}

func TestDeriveStarsFromDeniedCycles(t *testing.T) {
	d := dtd.MustParse(`dtd s {
		root a;
		a -> b*;
		b -> b*, c*;
		c -> #text;
	}`)
	v, err := secview.Derive(d, deny("b"))
	if err != nil {
		t.Fatal(err)
	}
	q := v.Query("a", "c")
	if q == nil {
		t.Fatal("no derived path a→c")
	}
	// The denied cycle must surface as a Kleene star: regular XPath, not X.
	if xpath.InFragmentX(q) {
		t.Errorf("derived annotation %q should need a Kleene star", q)
	}
	doc, err := xmltree.ParseString(`<a><b><c>1</c><b><b><c>2</c></b></b></b><b><c>3</c></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	// All c's are promoted to the root.
	got := refeval.Eval(q, doc.Root)
	if len(got) != 3 {
		t.Errorf("σ(a,c) selected %d nodes, want 3 (%s)", len(got), q)
	}
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(mat.Doc.Root.ElementChildren()); n != 3 {
		t.Errorf("view root has %d c children, want 3", n)
	}
}

func TestDeriveConditional(t *testing.T) {
	d := hospital.DocDTD()
	p := hospitalPolicy()
	cond, err := xpath.ParsePred("visit/treatment/medication/diagnosis/text()='heart disease'")
	if err != nil {
		t.Fatal(err)
	}
	p["patient"] = secview.Rule{Action: secview.Cond, Filter: cond}
	v, err := secview.Derive(d, p)
	if err != nil {
		t.Fatal(err)
	}
	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Only heart-disease patients (at any level) are exposed; failing
	// patients hide their whole subtree, so Bob (healthy) blocks his
	// mother Carol despite her diagnosis, while Dan (heart disease) is
	// promoted through the denied sibling wrapper.
	count := 0
	mat.Doc.Walk(func(n *xmltree.Node) bool {
		if n.Label == "patient" {
			count++
		}
		return true
	})
	if count != 3 { // Alice, Dan (promoted sibling), Erin
		t.Errorf("conditional view exposes %d patients, want 3", count)
	}
	// Carol must not appear: her record's diagnosis text would be the
	// only 1980 entry; check no view patient maps to her source node.
	for viewNode, src := range mat.Src {
		if viewNode.Label != "patient" {
			continue
		}
		for _, c := range src.ElementChildren() {
			if c.Label == "pname" && c.TextContent() == "Carol" {
				t.Error("Carol leaked through her failing son Bob")
			}
		}
	}
}

func TestDeriveErrors(t *testing.T) {
	d := hospital.DocDTD()
	if _, err := secview.Derive(d, deny("hospital")); err == nil {
		t.Error("denied root must fail")
	}
	if _, err := secview.Derive(d, deny("nosuchtype")); err == nil {
		t.Error("unknown type must fail")
	}
	p := secview.Policy{"patient": {Action: secview.Cond}}
	if _, err := secview.Derive(d, p); err == nil || !strings.Contains(err.Error(), "filter") {
		t.Errorf("cond without filter must fail, got %v", err)
	}
}

func TestDeriveAllowAllIsIdentityShaped(t *testing.T) {
	d := hospital.DocDTD()
	v, err := secview.Derive(d, secview.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Same element multiset as the source (productions are starred, so
	// conformance differs, but no node is hidden or duplicated).
	s1, s2 := doc.ComputeStats(), mat.Doc.ComputeStats()
	if s1.Elements != s2.Elements {
		t.Errorf("allow-all view has %d elements, source %d", s2.Elements, s1.Elements)
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := secview.ParsePolicy(`policy {
		# hide identities
		deny department, name, pname;
		deny doctor;
		allow visit;
		cond patient = visit/treatment/medication/diagnosis/text()='heart disease';
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if p["department"].Action != secview.Deny || p["doctor"].Action != secview.Deny {
		t.Error("deny rules missing")
	}
	if p["visit"].Action != secview.Allow {
		t.Error("allow rule missing")
	}
	if r := p["patient"]; r.Action != secview.Cond || r.Filter == nil {
		t.Error("cond rule missing")
	}
	// Quoted semicolons and comment markers inside filters survive.
	p2, err := secview.ParsePolicy(`policy {
		cond a = b/text()='x; #not a comment';
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if p2["a"].Filter == nil {
		t.Fatal("filter lost")
	}
	if got := p2["a"].Filter.String(); !strings.Contains(got, "x; #not a comment") {
		t.Errorf("filter constant mangled: %q", got)
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []string{
		``,
		`deny a;`,
		`policy deny a;`,
		`policy { deny a; deny a; }`,
		`policy { cond a; }`,
		`policy { cond a = ; }`,
		`policy { cond = b; }`,
		`policy { frobnicate a; }`,
		`policy { deny ,; }`,
	}
	for _, c := range cases {
		if _, err := secview.ParsePolicy(c); err == nil {
			t.Errorf("ParsePolicy(%q): want error", c)
		}
	}
}

func TestPolicyDescendantAxisNotAComment(t *testing.T) {
	// '//' inside a cond filter is the descendant axis, never a comment;
	// truncating it would silently weaken the security filter.
	p, err := secview.ParsePolicy(`policy {
		cond patient = visit//diagnosis/text()='hiv';
	}`)
	if err != nil {
		t.Fatal(err)
	}
	f := p["patient"].Filter
	if f == nil {
		t.Fatal("filter lost")
	}
	if got := f.String(); got != "visit/**/diagnosis/text()='hiv'" {
		t.Errorf("filter mangled: %q", got)
	}
}
