// Package secview derives security views from access-control policies —
// the module that produces the view definitions the paper's rewriting
// machinery consumes. The paper's σ0 is such a view ("the server defines
// an XML view for each group of users", §1, citing the security-view
// framework of Fan, Chan and Garofalakis [9]); the SMOQE demo system pairs
// this derivation with the rewriter and HyPE.
//
// A policy assigns each element type of the document DTD one of:
//
//	Allow      — the type is visible in the view;
//	Deny       — the type is hidden, but its visible descendants are
//	             promoted to the nearest visible ancestor (the view "walks
//	             through" it);
//	Cond(q)    — the type is visible only for elements satisfying the Xreg
//	             filter q; elements failing q are hidden together with
//	             their entire subtree.
//
// Derivation computes, for every pair of visible types (A, B), the regular
// XPath expression of all DTD paths from A to B whose intermediate types
// are all denied — Kleene stars appear exactly when denied types form
// cycles, which is why security views over recursive DTDs need regular
// XPath (the paper's opening observation). The derived view DTD gives each
// visible type the starred sequence of its reachable visible child types
// (cardinalities are erased, as in the security-view normal form).
package secview

import (
	"fmt"
	"sort"

	"smoqe/internal/dtd"
	"smoqe/internal/view"
	"smoqe/internal/xpath"
)

// Action is the visibility class of an element type.
type Action uint8

const (
	// Allow exposes the type.
	Allow Action = iota
	// Deny hides the type and promotes its visible descendants.
	Deny
	// Cond exposes elements of the type only when the policy's filter
	// holds; failing elements hide their whole subtree.
	Cond
)

func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	case Cond:
		return "cond"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Rule is one policy entry.
type Rule struct {
	Action Action
	// Filter is the visibility condition for Cond rules (an Xreg filter
	// over the source, evaluated at the element).
	Filter xpath.Pred
}

// Policy maps element types of the document DTD to rules. Types without an
// entry default to Allow.
type Policy map[string]Rule

// Derive computes the security view for a policy over the document DTD d.
// The DTD root must be visible.
func Derive(d *dtd.DTD, p Policy) (*view.View, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("secview: %w", err)
	}
	ruleOf := func(t string) Rule {
		if r, ok := p[t]; ok {
			return r
		}
		return Rule{Action: Allow}
	}
	for t, r := range p {
		if !d.HasType(t) {
			return nil, fmt.Errorf("secview: policy names unknown type %q", t)
		}
		if r.Action == Cond && r.Filter == nil {
			return nil, fmt.Errorf("secview: conditional rule for %q has no filter", t)
		}
	}
	if ruleOf(d.Root).Action != Allow {
		return nil, fmt.Errorf("secview: the root type %q must be allowed", d.Root)
	}

	reach := d.Reachable()
	var visible, denied []string
	for _, t := range d.Types() {
		if !reach[t] {
			continue
		}
		switch ruleOf(t).Action {
		case Deny:
			denied = append(denied, t)
		default:
			visible = append(visible, t)
		}
	}
	sort.Strings(visible)
	sort.Strings(denied)

	// For every visible source type A, compute σ(A,B) for each visible B:
	// the union of DTD paths from A to B through denied-only intermediate
	// types, ending with the step B (filtered for Cond targets).
	tgt := dtd.New(d.Name+"-view", d.Root)
	v := &view.View{
		Name:   "secview_" + d.Name,
		Source: d,
		Target: tgt,
		Ann:    make(map[view.Edge]xpath.Path),
	}
	for _, a := range visible {
		type edge struct {
			child string
			q     xpath.Path
		}
		var edges []edge
		for _, b := range visible {
			q := pathsThroughDenied(d, ruleOf, a, b, denied)
			if q == nil {
				continue
			}
			edges = append(edges, edge{b, q})
		}
		// View production: starred sequence of the reachable visible
		// children; PCDATA types keep their text.
		switch {
		case len(edges) > 0:
			terms := make([]string, len(edges))
			for i, e := range edges {
				terms[i] = e.child + "*"
			}
			tgt.DeclareSeq(a, terms...)
			for _, e := range edges {
				v.Ann[view.Edge{Parent: a, Child: e.child}] = e.q
			}
		case d.Prods[a].Kind == dtd.Str:
			tgt.DeclareStr(a)
		default:
			tgt.DeclareEmpty(a)
		}
	}
	if err := v.Check(); err != nil {
		return nil, fmt.Errorf("secview: internal: %w", err)
	}
	return v, nil
}

// pathsThroughDenied returns the Xreg expression of all paths from visible
// type a to visible type b whose intermediate types are denied, or nil if
// no such path exists. Denied cycles produce Kleene stars (solved with
// Arden's lemma); Cond endpoints contribute their filter.
func pathsThroughDenied(d *dtd.DTD, ruleOf func(string) Rule, a, b string, denied []string) xpath.Path {
	// Final step into b, with the Cond filter if any.
	bStep := func() xpath.Path {
		var q xpath.Path = &xpath.Label{Name: b}
		if r := ruleOf(b); r.Action == Cond {
			q = &xpath.Filter{Path: q, Cond: r.Filter}
		}
		return q
	}

	// Linear system over the denied types: E_x = ⋃_{x→y denied} y/E_y ∪
	// (x→b ? b' : ∅), meaning "paths from inside x to b". The answer is
	// E_a with the same equation shape (a itself is not a variable).
	idx := make(map[string]int, len(denied))
	for i, t := range denied {
		idx[t] = i
	}
	// eq[i] = coefficient paths per variable plus an optional constant.
	type term struct {
		prefix xpath.Path // step(s) into the variable / constant
		via    int        // variable index, -1 for the constant
	}
	eqs := make([][]term, len(denied))
	build := func(x string) []term {
		var out []term
		for _, y := range d.ChildTypes(x) {
			if j, ok := idx[y]; ok {
				out = append(out, term{prefix: &xpath.Label{Name: y}, via: j})
			}
			if y == b {
				out = append(out, term{prefix: bStep(), via: -1})
			}
		}
		return out
	}
	for i, x := range denied {
		eqs[i] = build(x)
	}

	union := func(l, r xpath.Path) xpath.Path {
		if l == nil {
			return r
		}
		if r == nil {
			return l
		}
		return &xpath.Union{Left: l, Right: r}
	}
	seq := func(l, r xpath.Path) xpath.Path {
		return &xpath.Seq{Left: l, Right: r}
	}

	// Gaussian elimination with Arden: X = p/X ∪ rest ⇒ X = p*/rest.
	for vI := len(denied) - 1; vI >= 0; vI-- {
		var self xpath.Path
		var rest []term
		for _, tm := range eqs[vI] {
			if tm.via == vI {
				self = union(self, tm.prefix)
				continue
			}
			rest = append(rest, tm)
		}
		if self != nil {
			star := &xpath.Star{Sub: self}
			for i := range rest {
				rest[i] = term{prefix: seq(star, rest[i].prefix), via: rest[i].via}
			}
		}
		eqs[vI] = rest
		for u := 0; u < vI; u++ {
			var out []term
			for _, tm := range eqs[u] {
				if tm.via != vI {
					out = append(out, tm)
					continue
				}
				for _, sub := range eqs[vI] {
					out = append(out, term{prefix: seq(tm.prefix, sub.prefix), via: sub.via})
				}
			}
			eqs[u] = out
		}
	}
	// Back-substitute upward so every equation is constant-only.
	solved := make([]xpath.Path, len(denied))
	for vI := 0; vI < len(denied); vI++ {
		var expr xpath.Path
		for _, tm := range eqs[vI] {
			if tm.via < 0 {
				expr = union(expr, tm.prefix)
				continue
			}
			if solved[tm.via] == nil {
				continue // variable with no path to b
			}
			expr = union(expr, seq(tm.prefix, solved[tm.via]))
		}
		solved[vI] = expr
	}

	// Assemble E_a.
	var out xpath.Path
	for _, tm := range build(a) {
		if tm.via < 0 {
			out = union(out, tm.prefix)
			continue
		}
		if solved[tm.via] == nil {
			continue
		}
		out = union(out, seq(tm.prefix, solved[tm.via]))
	}
	return out
}
