package colstore

import (
	"bytes"
	"testing"

	"smoqe/internal/datagen"
	"smoqe/internal/xmltree"
)

// Snapshot benchmarks answer the operational question behind the format:
// how much faster is loading a corpus from its binary snapshot than
// re-parsing the XML it came from?

func benchCorpus(b *testing.B) (*xmltree.Document, []byte, []byte) {
	b.Helper()
	doc := datagen.Generate(datagen.DefaultConfig(3000))
	var xml bytes.Buffer
	if err := doc.WriteXML(&xml, false); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := FromTree(doc).WriteSnapshot(&snap); err != nil {
		b.Fatal(err)
	}
	return doc, xml.Bytes(), snap.Bytes()
}

func BenchmarkSnapshotWrite(b *testing.B) {
	doc, _, _ := benchCorpus(b)
	cd := FromTree(doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := cd.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkSnapshotRead(b *testing.B) {
	_, _, snap := benchCorpus(b)
	b.SetBytes(int64(len(snap)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(snap)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotVsParse is the headline comparison: the same corpus
// loaded from XML (parse + columnar build) and from its snapshot.
func BenchmarkSnapshotVsParse(b *testing.B) {
	_, xml, snap := benchCorpus(b)
	b.Run("parse-xml", func(b *testing.B) {
		b.SetBytes(int64(len(xml)))
		for i := 0; i < b.N; i++ {
			doc, err := xmltree.Parse(bytes.NewReader(xml))
			if err != nil {
				b.Fatal(err)
			}
			FromTree(doc)
		}
	})
	b.Run("load-snapshot", func(b *testing.B) {
		b.SetBytes(int64(len(snap)))
		for i := 0; i < b.N; i++ {
			if _, err := ReadSnapshot(bytes.NewReader(snap)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFromTree(b *testing.B) {
	doc, _, _ := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromTree(doc)
	}
}

// BenchmarkTree measures rebuilding the pointer tree from the columnar
// form — the cost a snapshot-registered server document pays once.
func BenchmarkTree(b *testing.B) {
	doc, _, _ := benchCorpus(b)
	cd := FromTree(doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.Tree()
	}
}
