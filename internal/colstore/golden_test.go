package colstore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smoqe/internal/hospital"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden snapshot fixture under testdata/")

// TestGoldenSnapshot pins the on-disk format: the checked-in snapshot of
// the paper's hospital sample document must (a) still load and reproduce
// the sample tree exactly, and (b) be byte-identical to what the current
// code serializes. If (b) fails, the format changed — bump snapshotVersion
// (old snapshots must be rejected, not misread) and regenerate the fixture
// with: go test ./internal/colstore -run TestGoldenSnapshot -update-golden
func TestGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "hospital"+FileExt)
	d := hospital.SampleDocument()
	cd := FromTree(d)
	var buf bytes.Buffer
	if err := cd.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden snapshot no longer loads: %v", err)
	}
	checkEquivalent(t, d, loaded)
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatalf("golden snapshot drift: version-%d serialization of the sample document no longer matches testdata (got %d bytes, golden %d); if the format changed, bump snapshotVersion and regenerate with -update-golden",
			snapshotVersion, buf.Len(), len(raw))
	}
}
