package colstore

import (
	"bytes"
	"errors"
	"testing"

	"smoqe/internal/xmltree"
)

// FuzzSnapshotRead feeds truncated, bit-flipped and arbitrary bytes to
// ReadSnapshot. The reader must either accept the input or return an error
// that unwraps to *FormatError — never panic — and the chunked decoder
// bounds read-ahead allocation to decodeChunk, so a forged header asking
// for gigabytes of nodes fails on truncation instead of exhausting memory.
func FuzzSnapshotRead(f *testing.F) {
	var seeds [][]byte
	for _, src := range []string{
		`<a/>`,
		`<a>x<b/>y<b>z</b></a>`,
		`<r><a><b><c>deep text</c></b></a><a/><a>tail</a></r>`,
	} {
		d, err := xmltree.ParseString(src)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := FromTree(d).WriteSnapshot(&buf); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	for _, s := range seeds {
		f.Add(s)
		f.Add(s[:len(s)/2]) // truncated mid-columns
		f.Add(s[:len(s)-2]) // truncated checksum trailer
		flip := bytes.Clone(s)
		flip[len(flip)/3] ^= 0x40 // bit flip inside the hashed region
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("SMOQSNAP"))
	// A forged header demanding ~10^9 nodes from a 28-byte file: must fail
	// fast on truncation, not allocate 4 GiB of column.
	forged := append([]byte("SMOQSNAP"),
		1, 0, 0, 0, // version
		0xff, 0xff, 0xff, 0x3f, // numNodes just under the cap
		0, 0, 0, 0, // numLabels
		0, 0, 0, 0, // arenaLen
		0, 0, 0, 0) // labelsLen
	f.Add(forged)
	f.Fuzz(func(t *testing.T, data []byte) {
		cd, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("ReadSnapshot returned an untyped error: %v", err)
			}
			return
		}
		// Whatever the reader accepts must re-encode deterministically and
		// survive a second round trip byte-identically.
		var once bytes.Buffer
		if err := cd.WriteSnapshot(&once); err != nil {
			t.Fatalf("rewriting accepted snapshot: %v", err)
		}
		again, err := ReadSnapshot(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-reading rewritten snapshot: %v", err)
		}
		var twice bytes.Buffer
		if err := again.WriteSnapshot(&twice); err != nil {
			t.Fatalf("rewriting twice: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("accepted snapshot is not canonical: re-encodings differ")
		}
	})
}
