// Package colstore provides the columnar document representation of ROADMAP
// item 1: a document is a set of flat preorder arrays — interned label IDs,
// subtree-end intervals, parent/depth/position columns, and text offsets
// into a single character arena — instead of a pointer tree. Every XPath
// axis then reduces to integer range comparisons over the preorder/interval
// encoding (children of n are c := n+1; c <= End(n); c = End(c)+1, the
// descendants of n are exactly (n, End(n)]), traversal is memory-bandwidth-
// bound rather than pointer-chase-bound, and the whole document serializes
// to a versioned binary snapshot (see snapshot.go) that loads in O(read).
//
// A Document is immutable after construction; clones of evaluation engines
// share it — columns and arena included — zero-copy across goroutines.
package colstore

import (
	"fmt"
	"math"

	"smoqe/internal/xmltree"
)

// Document is an immutable columnar XML document. All per-node columns are
// indexed by preorder id; node 0 is the root element. Text nodes carry
// label id -1 and their character data as an arena slice; element nodes
// carry the concatenation of their direct text children as their arena
// slice, so text()='c' predicates never concatenate at query time.
type Document struct {
	// labels is the interned element label table, in first-occurrence
	// preorder order; label ids index it.
	labels   []string
	labelIDs map[string]int32

	label   []int32 // per node: label id, or -1 for a text node
	end     []int32 // per node: preorder id of the last node in its subtree
	parent  []int32 // per node: parent id, -1 for the root
	depth   []int32 // per node: edges from the root
	pos     []int32 // per node: 1-based ordinal among same-kind siblings
	textOff []int32 // per node: arena offset of its text (see Document doc)
	textLen []int32 // per node: arena byte length of its text
	arena   string  // all character data, grouped by owning element
}

// FromTree builds the columnar form of d. The construction is deterministic:
// labels are interned in first-occurrence preorder order and the arena is
// written grouped by owning element in preorder, so two structurally equal
// trees produce byte-identical columns (and therefore byte-identical
// snapshots). Documents are capped at MaxInt32 nodes and arena bytes — far
// beyond what a pointer tree could hold in memory anyway.
func FromTree(d *xmltree.Document) *Document {
	if d.Root == nil {
		panic("colstore: FromTree on document without root")
	}
	b := &builder{cd: &Document{labelIDs: make(map[string]int32)}}
	b.build(d.Root, -1, 0, 1)
	b.cd.arena = string(b.arena)
	return b.cd
}

// builder accumulates the arena as a byte slice during construction; the
// finished Document holds it as an immutable string.
type builder struct {
	cd    *Document
	arena []byte
}

// build appends node n (and its subtree) to the columns and returns n's
// preorder id. parent/depth/pos are derived structurally, not copied, so
// the columns are canonical for the tree shape.
func (b *builder) build(n *xmltree.Node, parent int32, depth, pos int32) int32 {
	cd := b.cd
	id := cd.newNode(parent, depth, pos)
	cd.label[id] = cd.intern(n.Label)

	// The element's text region: its direct text children, concatenated.
	// Each text child's own slice lands inside this region, so both the
	// element and its text children read straight out of the arena.
	start := len(b.arena)
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			b.arena = append(b.arena, c.Data...)
		}
	}
	if len(b.arena) > math.MaxInt32 {
		panic("colstore: document text exceeds 2 GiB arena limit")
	}
	cd.textOff[id] = int32(start)
	cd.textLen[id] = int32(len(b.arena) - start)

	textOff := int32(start)
	elemPos, textPos := int32(0), int32(0)
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			textPos++
			tid := cd.newNode(id, depth+1, textPos)
			cd.label[tid] = -1
			cd.textOff[tid] = textOff
			cd.textLen[tid] = int32(len(c.Data))
			cd.end[tid] = tid
			textOff += int32(len(c.Data))
			continue
		}
		elemPos++
		b.build(c, id, depth+1, elemPos)
	}
	cd.end[id] = int32(len(cd.label)) - 1
	return id
}

func (cd *Document) newNode(parent int32, depth, pos int32) int32 {
	if len(cd.label) >= math.MaxInt32 {
		panic("colstore: document exceeds 2^31-1 nodes")
	}
	id := int32(len(cd.label))
	cd.label = append(cd.label, 0)
	cd.end = append(cd.end, 0)
	cd.parent = append(cd.parent, parent)
	cd.depth = append(cd.depth, depth)
	cd.pos = append(cd.pos, pos)
	cd.textOff = append(cd.textOff, 0)
	cd.textLen = append(cd.textLen, 0)
	return id
}

func (cd *Document) intern(label string) int32 {
	if id, ok := cd.labelIDs[label]; ok {
		return id
	}
	id := int32(len(cd.labels))
	cd.labels = append(cd.labels, label)
	cd.labelIDs[label] = id
	return id
}

// NumNodes returns the total number of nodes (elements and text).
func (cd *Document) NumNodes() int { return len(cd.label) }

// NumLabels returns the number of distinct element labels.
func (cd *Document) NumLabels() int { return len(cd.labels) }

// ArenaSize returns the number of character-data bytes.
func (cd *Document) ArenaSize() int { return len(cd.arena) }

// IsElement reports whether node n is an element.
func (cd *Document) IsElement(n int32) bool { return cd.label[n] >= 0 }

// LabelID returns node n's interned label id, or -1 for a text node.
func (cd *Document) LabelID(n int32) int32 { return cd.label[n] }

// Label returns node n's element label ("" for a text node).
func (cd *Document) Label(n int32) string {
	if id := cd.label[n]; id >= 0 {
		return cd.labels[id]
	}
	return ""
}

// LabelIDOf returns the interned id of label, or ok=false when no node of
// the document carries it (an automaton transition on such a label can
// never fire here).
func (cd *Document) LabelIDOf(label string) (int32, bool) {
	id, ok := cd.labelIDs[label]
	return id, ok
}

// Labels returns the interned label table; the caller must not modify it.
func (cd *Document) Labels() []string { return cd.labels }

// End returns the preorder id of the last node in n's subtree (n itself for
// a leaf): n's descendants are exactly the ids in (n, End(n)].
func (cd *Document) End(n int32) int32 { return cd.end[n] }

// Parent returns n's parent id, or -1 for the root.
func (cd *Document) Parent(n int32) int32 { return cd.parent[n] }

// Depth returns the number of edges from the root to n.
func (cd *Document) Depth(n int32) int32 { return cd.depth[n] }

// Pos returns n's 1-based ordinal among its same-kind siblings (element
// ordinal for elements, text ordinal for text nodes), matching
// xmltree.Node.Pos.
func (cd *Document) Pos(n int32) int32 { return cd.pos[n] }

// Text returns node n's character data: its own data for a text node, the
// concatenation of its direct text children for an element. The result is
// a zero-copy slice of the arena.
func (cd *Document) Text(n int32) string {
	off := cd.textOff[n]
	return cd.arena[off : off+cd.textLen[n]]
}

// Cursor is a positioned read pointer over a Document implementing
// mfa.NodeView, so AFA predicate evaluation runs on the columns without
// materializing nodes. One cursor is reused for a whole evaluation run
// (Seek repositions it), keeping the interface conversion allocation-free.
type Cursor struct {
	d  *Document
	id int32
}

// At returns a cursor positioned at node id.
func (cd *Document) At(id int32) *Cursor { return &Cursor{d: cd, id: id} }

// Seek repositions the cursor.
func (c *Cursor) Seek(id int32) { c.id = id }

// ID returns the cursor's current node id.
func (c *Cursor) ID() int32 { return c.id }

// TextContent implements mfa.NodeView.
func (c *Cursor) TextContent() string { return c.d.Text(c.id) }

// ElemPos implements mfa.NodeView.
func (c *Cursor) ElemPos() int { return int(c.d.pos[c.id]) }

// Tree materializes the columnar document back into a pointer tree. Nodes
// are created in preorder, so xmltree IDs equal preorder ids and
// Tree().XMLString() of a FromTree round trip is byte-identical to the
// original document's.
func (cd *Document) Tree() *xmltree.Document {
	d := xmltree.NewDocument(cd.Label(0))
	var rec func(n int32, into *xmltree.Node)
	rec = func(n int32, into *xmltree.Node) {
		for c := n + 1; c <= cd.end[n]; c = cd.end[c] + 1 {
			if cd.label[c] < 0 {
				d.AddText(into, cd.Text(c))
				continue
			}
			child := d.AddElement(into, cd.labels[cd.label[c]])
			rec(c, child)
		}
	}
	rec(0, d.Root)
	return d
}

// Stats computes the document's shape summary directly from the columns.
func (cd *Document) Stats() xmltree.Stats {
	st := xmltree.Stats{LabelCounts: make(map[string]int)}
	for i := range cd.label {
		if int(cd.depth[i]) > st.MaxDepth {
			st.MaxDepth = int(cd.depth[i])
		}
		if id := cd.label[i]; id >= 0 {
			st.Elements++
			st.LabelCounts[cd.labels[id]]++
		} else {
			st.Texts++
		}
	}
	return st
}

// validate checks the structural invariants a loaded snapshot must satisfy
// before the columns are trusted, and (re)derives parent, depth and pos —
// the derived columns are not stored (see snapshot.go).
func (cd *Document) validate() error {
	n := int32(len(cd.label))
	if n == 0 {
		return fmt.Errorf("colstore: empty document")
	}
	if cd.label[0] < 0 {
		return fmt.Errorf("colstore: root is a text node")
	}
	if cd.end[0] != n-1 {
		return fmt.Errorf("colstore: root subtree [0,%d] does not cover all %d nodes", cd.end[0], n)
	}
	arenaLen := int32(len(cd.arena))
	for i := int32(0); i < n; i++ {
		if l := cd.label[i]; l < -1 || int(l) >= len(cd.labels) {
			return fmt.Errorf("colstore: node %d: label id %d out of range", i, l)
		}
		if cd.end[i] < i || cd.end[i] >= n {
			return fmt.Errorf("colstore: node %d: subtree end %d out of range", i, cd.end[i])
		}
		if cd.label[i] < 0 && cd.end[i] != i {
			return fmt.Errorf("colstore: node %d: text node with children", i)
		}
		off, ln := cd.textOff[i], cd.textLen[i]
		if off < 0 || ln < 0 || off > arenaLen || ln > arenaLen-off {
			return fmt.Errorf("colstore: node %d: text [%d,+%d) outside arena of %d bytes", i, off, ln, arenaLen)
		}
	}
	// One pass with an interval stack: every node's interval must nest in
	// its parent's; parent/depth/pos fall out of the same walk.
	cd.parent = make([]int32, n)
	cd.depth = make([]int32, n)
	cd.pos = make([]int32, n)
	type frame struct {
		id         int32
		elem, text int32 // same-kind child ordinals handed out so far
	}
	stack := make([]frame, 0, 32)
	for i := int32(0); i < n; i++ {
		for len(stack) > 0 && i > cd.end[stack[len(stack)-1].id] {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			if i != 0 {
				return fmt.Errorf("colstore: node %d outside the root's subtree", i)
			}
			cd.parent[0], cd.depth[0], cd.pos[0] = -1, 0, 1
		} else {
			top := &stack[len(stack)-1]
			if cd.end[i] > cd.end[top.id] {
				return fmt.Errorf("colstore: node %d: subtree end %d escapes parent %d (end %d)", i, cd.end[i], top.id, cd.end[top.id])
			}
			cd.parent[i] = top.id
			cd.depth[i] = cd.depth[top.id] + 1
			if cd.label[i] >= 0 {
				top.elem++
				cd.pos[i] = top.elem
			} else {
				top.text++
				cd.pos[i] = top.text
			}
		}
		if cd.label[i] >= 0 {
			stack = append(stack, frame{id: i})
		} else if cd.end[i] != i {
			return fmt.Errorf("colstore: node %d: text node with subtree", i)
		}
	}
	return nil
}
