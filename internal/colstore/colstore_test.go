package colstore

import (
	"bytes"
	"errors"
	"testing"

	"smoqe/internal/datagen"
	"smoqe/internal/failpoint"
	"smoqe/internal/xmltree"
)

// checkEquivalent verifies every column of cd against the pointer tree d:
// preorder ids, labels, text, subtree intervals and the derived columns.
func checkEquivalent(t *testing.T, d *xmltree.Document, cd *Document) {
	t.Helper()
	if cd.NumNodes() != d.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", cd.NumNodes(), d.NumNodes())
	}
	id := int32(0)
	var rec func(n *xmltree.Node, parent int32) int32
	rec = func(n *xmltree.Node, parent int32) int32 {
		my := id
		id++
		if got, want := cd.IsElement(my), n.Kind == xmltree.Element; got != want {
			t.Fatalf("node %d: IsElement = %v, want %v (%s)", my, got, want, n.Path())
		}
		if got := cd.Label(my); got != n.Label {
			t.Fatalf("node %d: Label = %q, want %q", my, got, n.Label)
		}
		if n.Kind == xmltree.Text {
			if got := cd.Text(my); got != n.Data {
				t.Fatalf("node %d: Text = %q, want %q", my, got, n.Data)
			}
		} else if got := cd.Text(my); got != n.TextContent() {
			t.Fatalf("node %d: element Text = %q, want %q", my, got, n.TextContent())
		}
		if got := cd.Parent(my); got != parent {
			t.Fatalf("node %d: Parent = %d, want %d", my, got, parent)
		}
		if got := cd.Depth(my); int(got) != n.Depth {
			t.Fatalf("node %d: Depth = %d, want %d", my, got, n.Depth)
		}
		if got := cd.Pos(my); int(got) != n.Pos {
			t.Fatalf("node %d: Pos = %d, want %d", my, got, n.Pos)
		}
		for _, c := range n.Children {
			rec(c, my)
		}
		if got := cd.End(my); got != id-1 {
			t.Fatalf("node %d: End = %d, want %d", my, got, id-1)
		}
		return my
	}
	rec(d.Root, -1)

	// The cursor view must agree with the columns.
	cur := cd.At(0)
	for i := int32(0); i < int32(cd.NumNodes()); i++ {
		cur.Seek(i)
		if cur.TextContent() != cd.Text(i) || int32(cur.ElemPos()) != cd.Pos(i) {
			t.Fatalf("cursor at %d disagrees with columns", i)
		}
	}
}

func TestFromTreeEquivalence(t *testing.T) {
	docs := map[string]*xmltree.Document{
		"datagen-40":  datagen.Generate(datagen.DefaultConfig(40)),
		"datagen-300": datagen.Generate(datagen.DefaultConfig(300)),
	}
	for _, src := range []string{
		`<a/>`,
		`<a>x<b/>y<b>z</b></a>`,
		`<a><b><c><d>deep</d></c></b><b/>tail</a>`,
	} {
		d, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		docs[src] = d
	}
	for name, d := range docs {
		cd := FromTree(d)
		checkEquivalent(t, d, cd)
		// Tree() materializes the identical pointer tree.
		back := cd.Tree()
		if back.XMLString() != d.XMLString() {
			t.Fatalf("%s: Tree() round trip changed serialization", name)
		}
		s1, s2 := d.ComputeStats(), cd.Stats()
		if s1.Elements != s2.Elements || s1.Texts != s2.Texts || s1.MaxDepth != s2.MaxDepth {
			t.Fatalf("%s: Stats = %+v, want %+v", name, s2, s1)
		}
		for l, c := range s1.LabelCounts {
			if s2.LabelCounts[l] != c {
				t.Fatalf("%s: LabelCounts[%q] = %d, want %d", name, l, s2.LabelCounts[l], c)
			}
		}
	}
}

// TestSnapshotRoundTrip checks save→load→save is byte-identical and the
// loaded document is column-for-column the one saved.
func TestSnapshotRoundTrip(t *testing.T) {
	d := datagen.Generate(datagen.DefaultConfig(120))
	cd := FromTree(d)
	var buf1 bytes.Buffer
	if err := cd.WriteSnapshot(&buf1); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, d, loaded)
	var buf2 bytes.Buffer
	if err := loaded.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("save→load→save not byte-identical: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
}

func TestSnapshotFile(t *testing.T) {
	d, err := xmltree.ParseString(`<a>x<b>y</b><c><d/></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/doc" + FileExt
	if err := FromTree(d).Save(path); err != nil {
		t.Fatal(err)
	}
	cd, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, d, cd)
}

// TestSnapshotRejectsCorruption flips every byte of a valid snapshot in
// turn; every mutation must be rejected (by magic, version, structural
// validation or the checksum) — never loaded silently.
func TestSnapshotRejectsCorruption(t *testing.T) {
	d, err := xmltree.ParseString(`<a>x<b>y</b><c><d/>z</c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FromTree(d).WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := range orig {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0xff
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flipped: snapshot accepted", i)
		}
	}
	// Truncations must be rejected too.
	for _, n := range []int{0, 4, 8, len(orig) / 2, len(orig) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(orig[:n])); err == nil {
			t.Fatalf("truncation to %d bytes: snapshot accepted", n)
		}
	}
}

func TestSnapshotFailpoints(t *testing.T) {
	defer failpoint.DisableAll()
	d, _ := xmltree.ParseString(`<a/>`)
	cd := FromTree(d)
	if err := failpoint.Enable(failpoint.SiteSnapshotWrite, "error"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := cd.WriteSnapshot(&buf)
	var fe *failpoint.Error
	if !errors.As(err, &fe) {
		t.Fatalf("WriteSnapshot with armed failpoint: err = %v", err)
	}
	failpoint.Disable(failpoint.SiteSnapshotWrite)
	if err := cd.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(failpoint.SiteSnapshotRead, "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); !errors.As(err, &fe) {
		t.Fatalf("ReadSnapshot with armed failpoint: err = %v", err)
	}
}
