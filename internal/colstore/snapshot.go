package colstore

// Versioned binary snapshot of a columnar document, so a daemon loads a
// corpus in O(read) instead of re-parsing XML. Layout (all integers
// little-endian; full specification in docs/SNAPSHOT.md):
//
//	magic     "SMOQSNAP"                       8 bytes
//	version   uint32 (currently 1)
//	numNodes  uint32
//	numLabels uint32
//	arenaLen  uint32
//	labelsLen uint32   byte length of the label-table section
//	labels    numLabels × (uvarint length + bytes)
//	label     numNodes × int32   (-1 marks a text node)
//	end       numNodes × int32
//	textOff   numNodes × int32
//	textLen   numNodes × int32
//	arena     arenaLen bytes
//	checksum  uint32   CRC-32 (IEEE) of every preceding byte
//
// The derived columns (parent, depth, pos) are recomputed on load — they
// are functions of label and end — so a snapshot has exactly one byte
// representation per document and save→load→save round trips are
// byte-identical.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"smoqe/internal/failpoint"
)

const (
	snapshotMagic   = "SMOQSNAP"
	snapshotVersion = 1
	// maxSnapshotCount caps the node, label and byte counts read from a
	// snapshot header so corrupted input cannot trigger huge allocations
	// before the checksum is even seen.
	maxSnapshotCount = 1 << 30
)

// FileExt is the conventional file extension for snapshot files; the
// daemon's -snapshot-dir scan loads every file carrying it.
const FileExt = ".smoqe-snapshot"

// FormatError reports a structurally invalid or corrupt snapshot: bad
// magic, truncation, forged counts, checksum mismatch, or an invariant
// violation in the decoded columns. Every ReadSnapshot failure other than
// an injected failpoint unwraps to one, so callers can tell corrupt input
// apart from environmental trouble with errors.As and quarantine the file
// rather than retry it.
type FormatError struct {
	Offset int64  // byte offset at which the problem was detected
	Reason string // human-readable description of the corruption
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("corrupt snapshot at byte %d: %s", e.Offset, e.Reason)
}

// WriteSnapshot serializes the document. The encoding is deterministic:
// the same document always produces the same bytes.
func (cd *Document) WriteSnapshot(w io.Writer) error {
	if err := failpoint.Inject(failpoint.SiteSnapshotWrite); err != nil {
		return fmt.Errorf("colstore: snapshot write: %w", err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	enc := &encoder{w: bw}
	enc.bytes([]byte(snapshotMagic))
	enc.u32(snapshotVersion)
	enc.u32(uint32(len(cd.label)))
	enc.u32(uint32(len(cd.labels)))
	enc.u32(uint32(len(cd.arena)))
	labelsLen := 0
	for _, l := range cd.labels {
		labelsLen += uvarintLen(uint64(len(l))) + len(l)
	}
	enc.u32(uint32(labelsLen))
	for _, l := range cd.labels {
		enc.uvarint(uint64(len(l)))
		enc.bytes([]byte(l))
	}
	enc.col(cd.label)
	enc.col(cd.end)
	enc.col(cd.textOff)
	enc.col(cd.textLen)
	enc.bytes([]byte(cd.arena))
	if enc.err != nil {
		return fmt.Errorf("colstore: snapshot write: %w", enc.err)
	}
	// The checksum covers everything buffered so far; flush before reading
	// the CRC state, then write the trailer past the hashed region.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("colstore: snapshot write: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("colstore: snapshot write: %w", err)
	}
	return nil
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot, verifying
// magic, version, structural invariants and the trailing checksum, and
// recomputing the derived parent/depth/pos columns.
func ReadSnapshot(r io.Reader) (*Document, error) {
	if err := failpoint.Inject(failpoint.SiteSnapshotRead); err != nil {
		return nil, fmt.Errorf("colstore: snapshot read: %w", err)
	}
	crc := crc32.NewIEEE()
	dec := &decoder{r: bufio.NewReader(r), crc: crc}
	if magic := dec.bytes(len(snapshotMagic)); dec.err == nil && string(magic) != snapshotMagic {
		dec.corrupt("bad magic %q", magic)
	}
	if v := dec.u32(); dec.err == nil && v != snapshotVersion {
		dec.corrupt("unsupported version %d (have %d)", v, snapshotVersion)
	}
	numNodes := dec.count()
	numLabels := dec.count()
	arenaLen := dec.count()
	labelsLen := dec.count()
	// numLabels is untrusted header data: size the map by a bounded hint so
	// a forged count cannot pre-allocate gigabytes of buckets; the decode
	// loop below grows it label by label as real input arrives.
	cd := &Document{labelIDs: make(map[string]int32, min(numLabels, decodeChunk/16))}
	before := dec.n
	for i := 0; i < numLabels && dec.err == nil; i++ {
		l := dec.string()
		if dec.err != nil {
			break
		}
		if l == "" {
			dec.corrupt("empty label %d", i)
			break
		}
		if _, dup := cd.labelIDs[l]; dup {
			dec.corrupt("duplicate label %q", l)
			break
		}
		cd.labelIDs[l] = int32(len(cd.labels))
		cd.labels = append(cd.labels, l)
	}
	if dec.err == nil && dec.n-before != labelsLen {
		dec.corrupt("label section is %d bytes, header says %d", dec.n-before, labelsLen)
	}
	cd.label = dec.col(numNodes)
	cd.end = dec.col(numNodes)
	cd.textOff = dec.col(numNodes)
	cd.textLen = dec.col(numNodes)
	cd.arena = string(dec.bytes(arenaLen))
	want := crc.Sum32() // trailer is outside the hashed region
	var sum [4]byte
	if dec.err == nil {
		if _, err := io.ReadFull(dec.r, sum[:]); err != nil {
			dec.corrupt("truncated checksum trailer (%v)", err)
		}
	}
	if dec.err != nil {
		return nil, fmt.Errorf("colstore: snapshot read: %w", dec.err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		dec.corrupt("checksum mismatch (stored %08x, computed %08x)", got, want)
		return nil, fmt.Errorf("colstore: snapshot read: %w", dec.err)
	}
	if err := cd.validate(); err != nil {
		dec.corrupt("%v", err)
		return nil, fmt.Errorf("colstore: snapshot read: %w", dec.err)
	}
	return cd, nil
}

// Save writes the snapshot to path (created or truncated).
func (cd *Document) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("colstore: snapshot save: %w", err)
	}
	if err := cd.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("colstore: snapshot save: %w", err)
	}
	return nil
}

// Load reads a snapshot file written by Save.
func Load(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("colstore: snapshot load: %w", err)
	}
	defer f.Close()
	cd, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("colstore: %s: %w", path, err)
	}
	return cd, nil
}

func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.bytes(e.buf[:4])
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

// col writes an int32 column as fixed little-endian words.
func (e *encoder) col(c []int32) {
	for _, v := range c {
		e.u32(uint32(v))
	}
}

type decoder struct {
	r   *bufio.Reader
	crc hash.Hash32
	n   int // bytes consumed so far (for section-length checks)
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// corrupt records a FormatError at the current read offset.
func (d *decoder) corrupt(format string, args ...any) {
	d.fail(&FormatError{Offset: int64(d.n), Reason: fmt.Sprintf(format, args...)})
}

// decodeChunk bounds how much bytes allocates ahead of data actually read,
// so a forged header cannot demand gigabytes before truncation surfaces.
const decodeChunk = 1 << 16

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, 0, min(n, decodeChunk))
	for len(b) < n {
		c := min(n-len(b), decodeChunk)
		start := len(b)
		b = append(b, make([]byte, c)...)
		if _, err := io.ReadFull(d.r, b[start:]); err != nil {
			d.corrupt("truncated input: want %d bytes, have %d (%v)", n, start, err)
			return nil
		}
		d.crc.Write(b[start:])
		d.n += c
	}
	return b
}

func (d *decoder) u32() uint32 {
	b := d.bytes(4)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// count reads a uint32 with the allocation-safety cap.
func (d *decoder) count() int {
	v := d.u32()
	if d.err == nil && v > maxSnapshotCount {
		d.corrupt("implausible count %d", v)
		return 0
	}
	return int(v)
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v := uint64(0)
	for shift := 0; ; shift += 7 {
		if shift >= 64 {
			d.corrupt("uvarint overflow")
			return 0
		}
		b := d.bytes(1)
		if d.err != nil {
			return 0
		}
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v
		}
	}
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxSnapshotCount {
		d.corrupt("implausible string length %d", n)
		return ""
	}
	return string(d.bytes(int(n)))
}

// col reads an int32 column of n fixed little-endian words.
func (d *decoder) col(n int) []int32 {
	if d.err != nil {
		return nil
	}
	raw := d.bytes(4 * n)
	if d.err != nil {
		return nil
	}
	c := make([]int32, n)
	for i := range c {
		c[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return c
}
