// Package failpoint is a dependency-free registry of named fault sites for
// chaos testing the serving stack. Production code calls Inject(site) at a
// handful of interesting places (parsing a document, building a plan,
// evaluating a shard, merging shard results, writing a response); tests and
// the SMOQE_FAILPOINTS environment variable arm those sites to inject
// errors, panics or delays with an optional firing probability. An unarmed
// registry costs one atomic load per Inject call.
//
// Spec grammar (one site):
//
//	mode[:argument][@probability]
//
//	error           return an *Error from Inject
//	panic           panic with an *Error
//	sleep:50ms      sleep, then return nil
//	error@0.1       as error, but only on 10% of calls
//
// The environment variable holds a list: SMOQE_FAILPOINTS=site=spec[,site=spec...]
// (',' and ';' both separate entries).
package failpoint

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "SMOQE_FAILPOINTS"

// The fault sites wired into the serving stack. Enable accepts arbitrary
// site names (tests may add their own), but these are the ones production
// code fires.
const (
	// SiteXMLTreeParse fires at the start of every xmltree.Parse call.
	SiteXMLTreeParse = "xmltree.parse"
	// SiteServerPlanBuild fires inside the plan cache's single-flight
	// build, before parse/rewrite/compile runs.
	SiteServerPlanBuild = "server.planbuild"
	// SiteHypeShardWorker fires in a shard-parallel worker before each
	// shard subtree evaluation.
	SiteHypeShardWorker = "hype.shard.worker"
	// SiteHypeMerge fires after the shard barrier, before the sequential
	// merge of shard results.
	SiteHypeMerge = "hype.merge"
	// SiteServerRespond fires in the HTTP layer after a successful query,
	// before the response is written.
	SiteServerRespond = "server.respond"
	// SiteSnapshotWrite fires at the start of every columnar snapshot
	// serialization (colstore.WriteSnapshot).
	SiteSnapshotWrite = "colstore.snapshot.write"
	// SiteSnapshotRead fires at the start of every columnar snapshot
	// deserialization (colstore.ReadSnapshot).
	SiteSnapshotRead = "colstore.snapshot.read"
	// SiteCorpusManifestWrite fires inside the corpus manifest writer,
	// between the temp-file write and the atomic rename (so an injected
	// crash leaves a torn temp file, never a torn manifest).
	SiteCorpusManifestWrite = "corpus.manifest.write"
	// SiteCorpusIndexDoc fires before each per-document index (parse +
	// fingerprint) attempt in the corpus indexer.
	SiteCorpusIndexDoc = "corpus.index.doc"
	// SiteCorpusScan fires at the start of every corpus directory scan.
	SiteCorpusScan = "corpus.scan"
)

// Mode is what an armed failpoint does when it fires.
type Mode string

const (
	// ModeError makes Inject return an *Error.
	ModeError Mode = "error"
	// ModePanic makes Inject panic with an *Error.
	ModePanic Mode = "panic"
	// ModeSleep makes Inject sleep for the configured duration.
	ModeSleep Mode = "sleep"
)

// Error is the fault an armed site injects: the value Inject returns in
// error mode and panics with in panic mode. Callers recognize injected
// faults with errors.As.
type Error struct {
	Site string
	Mode Mode
}

func (e *Error) Error() string {
	return fmt.Sprintf("failpoint: injected %s at %s", e.Mode, e.Site)
}

// rule is one armed site's behavior.
type rule struct {
	mode  Mode
	sleep time.Duration
	prob  float64 // (0, 1]; 1 = fire on every call
	spec  string  // the textual spec, for Armed()
}

var (
	mu sync.RWMutex
	// rules is guarded by mu.
	rules = map[string]rule{}
	// hits is guarded by mu (the per-site counters themselves are atomic).
	hits = map[string]*atomic.Int64{}
	// armed caches len(rules) so an unarmed Inject is one atomic load.
	armed atomic.Int32
)

// Enable arms site with the given spec (see the package comment for the
// grammar), replacing any previous rule for the site.
func Enable(site, spec string) error {
	if site == "" {
		return fmt.Errorf("failpoint: empty site name")
	}
	pr, err := Parse(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	rules[site] = rule{mode: pr.Mode, sleep: pr.Sleep, prob: pr.Prob, spec: spec}
	if hits[site] == nil {
		hits[site] = &atomic.Int64{}
	}
	armed.Store(int32(len(rules)))
	return nil
}

// Disable disarms site (a no-op if it was not armed). Hit counts survive so
// tests can still assert how often a disarmed site fired.
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	delete(rules, site)
	armed.Store(int32(len(rules)))
}

// DisableAll disarms every site and resets all hit counts.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	rules = map[string]rule{}
	hits = map[string]*atomic.Int64{}
	armed.Store(0)
}

// Hits reports how many times the site actually fired (fired = the
// probability check passed and the fault was injected).
func Hits(site string) int64 {
	mu.RLock()
	defer mu.RUnlock()
	if h := hits[site]; h != nil {
		return h.Load()
	}
	return 0
}

// Armed returns the armed sites as "site=spec" strings, sorted — what a
// daemon logs at startup.
func Armed() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(rules))
	for site, r := range rules {
		out = append(out, site+"="+r.spec)
	}
	sort.Strings(out)
	return out
}

// ArmSpec arms every "site=spec" entry of a ','- or ';'-separated list and
// returns the sites it armed. On a malformed entry nothing further is armed
// and the error names the offending entry.
func ArmSpec(specs string) ([]string, error) {
	var armedSites []string
	for _, entry := range strings.FieldsFunc(specs, func(r rune) bool { return r == ',' || r == ';' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return armedSites, fmt.Errorf("failpoint: bad entry %q (want site=spec)", entry)
		}
		if err := Enable(strings.TrimSpace(site), strings.TrimSpace(spec)); err != nil {
			return armedSites, fmt.Errorf("failpoint: entry %q: %w", entry, err)
		}
		armedSites = append(armedSites, strings.TrimSpace(site))
	}
	return armedSites, nil
}

// ArmFromEnv arms failpoints from $SMOQE_FAILPOINTS. An unset or empty
// variable is a no-op.
func ArmFromEnv() ([]string, error) {
	v := os.Getenv(EnvVar)
	if v == "" {
		return nil, nil
	}
	return ArmSpec(v)
}

// Inject fires the site if armed: it returns an *Error (error mode), panics
// with an *Error (panic mode), or sleeps and returns nil (sleep mode). An
// unarmed site — the production case — returns nil after one atomic load.
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.RLock()
	r, ok := rules[site]
	var h *atomic.Int64
	if ok {
		h = hits[site]
	}
	mu.RUnlock()
	if !ok {
		return nil
	}
	if r.prob < 1 && rand.Float64() >= r.prob {
		return nil
	}
	h.Add(1)
	switch r.mode {
	case ModeSleep:
		time.Sleep(r.sleep)
		return nil
	case ModePanic:
		panic(&Error{Site: site, Mode: ModePanic})
	default:
		return &Error{Site: site, Mode: ModeError}
	}
}

// Rule is the parsed form of one failpoint spec: what an armed site does
// and how often it fires.
type Rule struct {
	Mode  Mode
	Sleep time.Duration // ModeSleep only
	Prob  float64       // (0, 1]; 1 fires on every call
}

// ParseError is the typed rejection Parse returns for a malformed spec;
// it names the spec and the first rule it violates.
type ParseError struct {
	Spec   string
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("failpoint: bad spec %q: %s", e.Spec, e.Reason)
}

// Parse parses "mode[:argument][@probability]" (the grammar in the package
// comment) into a Rule. Malformed specs — unknown or empty mode, stray
// arguments, whitespace, repeated '@', probabilities outside (0, 1]
// (including NaN) — are rejected with a *ParseError; nothing is accepted
// silently, because a failpoint that does not mean what its spec says
// invalidates the chaos test that armed it.
func Parse(spec string) (Rule, error) {
	fail := func(reason string) (Rule, error) {
		return Rule{}, &ParseError{Spec: spec, Reason: reason}
	}
	if spec == "" {
		return fail("empty spec")
	}
	if strings.ContainsAny(spec, " \t\r\n") {
		return fail("whitespace in spec")
	}
	r := Rule{Prob: 1}
	body := spec
	if at := strings.Index(spec, "@"); at >= 0 {
		frac := spec[at+1:]
		if strings.Contains(frac, "@") {
			return fail("more than one '@'")
		}
		p, err := strconv.ParseFloat(frac, 64)
		if err != nil {
			return fail(fmt.Sprintf("unparsable probability %q", frac))
		}
		// The negated form is NaN-proof: every comparison with NaN is false.
		if !(p > 0 && p <= 1) {
			return fail("probability must satisfy 0 < p <= 1")
		}
		r.Prob = p
		body = spec[:at]
	}
	mode, arg, hasArg := strings.Cut(body, ":")
	if mode == "" {
		return fail("empty mode")
	}
	switch Mode(mode) {
	case ModeError, ModePanic:
		if hasArg {
			return fail(fmt.Sprintf("mode %q takes no argument", mode))
		}
		r.Mode = Mode(mode)
	case ModeSleep:
		if !hasArg || arg == "" {
			return fail("sleep needs a duration, e.g. sleep:50ms")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fail(fmt.Sprintf("bad sleep duration %q", arg))
		}
		if d < 0 {
			return fail("negative sleep duration")
		}
		r.Mode, r.Sleep = ModeSleep, d
	default:
		return fail(fmt.Sprintf("unknown mode %q (want error, panic or sleep:<dur>)", mode))
	}
	return r, nil
}
