package failpoint

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInjectUnarmedIsNil(t *testing.T) {
	t.Cleanup(DisableAll)
	DisableAll()
	if err := Inject("any.site"); err != nil {
		t.Fatalf("unarmed Inject: %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("s", "error"); err != nil {
		t.Fatal(err)
	}
	err := Inject("s")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Inject = %v, want *Error", err)
	}
	if fe.Site != "s" || fe.Mode != ModeError {
		t.Errorf("error = %+v", fe)
	}
	if Hits("s") != 1 {
		t.Errorf("hits = %d, want 1", Hits("s"))
	}
	// Other sites stay unaffected.
	if err := Inject("other"); err != nil {
		t.Errorf("unarmed site fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("s", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Mode != ModePanic {
			t.Errorf("recovered %v, want *Error in panic mode", r)
		}
	}()
	_ = Inject("s")
	t.Error("Inject did not panic")
}

func TestSleepMode(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("s", "sleep:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("s"); err != nil {
		t.Fatalf("sleep mode returned error: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("slept %v, want >= 30ms", d)
	}
}

func TestProbability(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("s", "error@0.5"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 1000; i++ {
		if Inject("s") != nil {
			fired++
		}
	}
	// P(outside [300, 700]) is astronomically small for p=0.5, n=1000.
	if fired < 300 || fired > 700 {
		t.Errorf("fired %d/1000 at p=0.5", fired)
	}
	if Hits("s") != int64(fired) {
		t.Errorf("hits = %d, fired = %d", Hits("s"), fired)
	}
}

func TestDisableAndArmedList(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("b", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("a", "sleep:1ms@0.25"); err != nil {
		t.Fatal(err)
	}
	got := Armed()
	if len(got) != 2 || got[0] != "a=sleep:1ms@0.25" || got[1] != "b=error" {
		t.Errorf("Armed() = %v", got)
	}
	Disable("b")
	if err := Inject("b"); err != nil {
		t.Errorf("disabled site fired: %v", err)
	}
	if len(Armed()) != 1 {
		t.Errorf("Armed() after Disable = %v", Armed())
	}
}

func TestArmSpecAndEnv(t *testing.T) {
	t.Cleanup(DisableAll)
	sites, err := ArmSpec("x=error, y=panic@0.5; z=sleep:10ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 3 {
		t.Fatalf("armed %v", sites)
	}
	DisableAll()

	t.Setenv(EnvVar, "x=error")
	if sites, err = ArmFromEnv(); err != nil || len(sites) != 1 {
		t.Fatalf("ArmFromEnv: %v %v", sites, err)
	}
	DisableAll()
	t.Setenv(EnvVar, "")
	if sites, err = ArmFromEnv(); err != nil || sites != nil {
		t.Fatalf("empty env: %v %v", sites, err)
	}
}

func TestBadSpecs(t *testing.T) {
	t.Cleanup(DisableAll)
	for _, spec := range []string{
		"", "explode", "error:arg", "panic:arg", "sleep", "sleep:notadur",
		"error@0", "error@1.5", "error@nope", "sleep:-5ms",
	} {
		if err := Enable("s", spec); err == nil {
			t.Errorf("Enable(%q) accepted", spec)
		}
	}
	if _, err := ArmSpec("justasite"); err == nil {
		t.Error("ArmSpec without '=' accepted")
	}
	if _, err := ArmSpec("s=badmode"); err == nil {
		t.Error("ArmSpec with bad mode accepted")
	}
}

func TestParse(t *testing.T) {
	valid := []struct {
		spec string
		want Rule
	}{
		{"error", Rule{Mode: ModeError, Prob: 1}},
		{"panic", Rule{Mode: ModePanic, Prob: 1}},
		{"sleep:50ms", Rule{Mode: ModeSleep, Sleep: 50 * time.Millisecond, Prob: 1}},
		{"error@0.1", Rule{Mode: ModeError, Prob: 0.1}},
		{"error@1", Rule{Mode: ModeError, Prob: 1}},
		{"sleep:1s@0.5", Rule{Mode: ModeSleep, Sleep: time.Second, Prob: 0.5}},
	}
	for _, tc := range valid {
		got, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q) = %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}

	invalid := []struct {
		spec   string
		reason string // substring the *ParseError.Reason must contain
	}{
		{"", "empty spec"},
		{"@0.5", "empty mode"},
		{":50ms", "empty mode"},
		{"explode", "unknown mode"},
		{"error:arg", "takes no argument"},
		{"panic:arg", "takes no argument"},
		{"sleep", "needs a duration"},
		{"sleep:", "needs a duration"},
		{"sleep:notadur", "bad sleep duration"},
		{"sleep:-5ms", "negative sleep duration"},
		{"error@0", "0 < p <= 1"},
		{"error@-0.5", "0 < p <= 1"},
		{"error@1.5", "0 < p <= 1"},
		{"error@NaN", "0 < p <= 1"},
		{"error@+Inf", "0 < p <= 1"},
		{"error@nope", "unparsable probability"},
		{"error@0.5@0.2", "more than one '@'"},
		{"error ", "whitespace"},
		{" error", "whitespace"},
		{"sleep:50 ms", "whitespace"},
		{"error\t@0.5", "whitespace"},
	}
	for _, tc := range invalid {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.spec)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error %T, want *ParseError", tc.spec, err)
			continue
		}
		if pe.Spec != tc.spec || !strings.Contains(pe.Reason, tc.reason) {
			t.Errorf("Parse(%q) = %v, want reason containing %q", tc.spec, err, tc.reason)
		}
	}
}

// TestEnableRejectsNaNProbability pins the regression Parse fixed: the old
// parser's `p <= 0 || p > 1` range check was false for NaN on both sides,
// so error@NaN armed a rule whose probability comparison in Inject was
// also always false — the site silently fired on every call.
func TestEnableRejectsNaNProbability(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("s", "error@NaN"); err == nil {
		t.Fatal("Enable accepted a NaN probability")
	}
	if err := Inject("s"); err != nil {
		t.Fatalf("site armed despite rejected spec: %v", err)
	}
}
