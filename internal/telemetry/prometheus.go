package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format produced by WritePrometheus.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families in registration order, each
// with # HELP / # TYPE headers, series in first-registration order.
// Histograms emit cumulative <name>_bucket series with le labels
// (including +Inf), plus <name>_sum and <name>_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ew := &errWriter{w: w}
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			ew.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		ew.printf("# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			s := f.series[key]
			switch f.kind {
			case kindCounter:
				ew.printf("%s %d\n", seriesName(f.name, s.key, ""), s.c.Value())
			case kindGauge:
				ew.printf("%s %s\n", seriesName(f.name, s.key, ""), formatFloat(s.g.Value()))
			case kindHistogram:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					le := `le="` + formatFloat(bound) + `"`
					ew.printf("%s %d\n", seriesName(f.name+"_bucket", s.key, le), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				ew.printf("%s %d\n", seriesName(f.name+"_bucket", s.key, `le="+Inf"`), cum)
				ew.printf("%s %s\n", seriesName(f.name+"_sum", s.key, ""), formatFloat(s.h.Sum()))
				ew.printf("%s %d\n", seriesName(f.name+"_count", s.key, ""), s.h.Count())
			}
		}
	}
	return ew.err
}

// Handler returns an http.Handler serving WritePrometheus — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WritePrometheus(w)
	})
}

// seriesName renders name{labels,extra} with empty parts elided.
func seriesName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
