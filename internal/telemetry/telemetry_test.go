package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instance.
	if r.Counter("reqs_total", "requests", nil) != c {
		t.Error("re-lookup returned a different counter")
	}
	// Different labels make a distinct series.
	c2 := r.Counter("reqs_total", "requests", Labels{"view": "v"})
	if c2 == c {
		t.Error("labeled series must be distinct")
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth", "", nil)
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
	r.GaugeFunc("uptime", "", nil, func() float64 { return 42 })
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uptime 42\n") {
		t.Errorf("func gauge missing:\n%s", out.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", h.Sum())
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Cumulative: ≤1 holds {0.5, 1}, ≤2 adds 1.5, ≤4 adds 3, +Inf adds 100.
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 106`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

// TestHistogramBucketBoundary: Prometheus buckets are `le` —
// less-OR-EQUAL — so a sample exactly on an upper bound must count
// toward that bound's bucket, not the next one up. This pins the
// non-cumulative per-bucket counts, where an off-by-one at the edge
// would be visible before cumulation papers over it.
func TestHistogramBucketBoundary(t *testing.T) {
	r := New()
	bounds := []float64{0.001, 0.01, 0.1}
	h := r.Histogram("lat", "", bounds, nil)
	for _, v := range bounds {
		h.Observe(v)
	}
	for i := range bounds {
		if got := h.counts[i].Load(); got != 1 {
			t.Errorf("bucket le=%v holds %d samples, want exactly 1 (le is inclusive)", bounds[i], got)
		}
	}
	if got := h.counts[len(bounds)].Load(); got != 0 {
		t.Errorf("+Inf bucket holds %d samples, want 0: no observation exceeded the largest bound", got)
	}

	// The same contract through the exposition: cumulative counts step by
	// one at each bound because each sample joined its own bucket.
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_bucket{le="0.001"} 1`,
		`lat_bucket{le="0.01"} 2`,
		`lat_bucket{le="0.1"} 3`,
		`lat_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out.String(), want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out.String())
		}
	}

	// Just past a bound belongs to the next bucket up.
	h.Observe(math.Nextafter(0.01, 1))
	if got := h.counts[2].Load(); got != 2 {
		t.Errorf("sample just above 0.01 landed wrong: le=0.1 bucket = %d, want 2", got)
	}
}

// TestHistogramBoundsNormalized: duplicate bounds would emit two series
// with the same le label, and NaN/±Inf bounds would misroute samples or
// duplicate the implicit +Inf bucket. Registration must scrub all three.
func TestHistogramBoundsNormalized(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "", []float64{2, 1, 2, math.NaN(), math.Inf(1), 1, math.Inf(-1)}, nil)
	if want := []float64{1, 2}; len(h.bounds) != len(want) || h.bounds[0] != want[0] || h.bounds[1] != want[1] {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	for _, v := range []float64{0.5, 1, 2, 3} {
		h.Observe(v)
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Every le value appears exactly once: no duplicate series.
	for _, le := range []string{`le="1"`, `le="2"`, `le="+Inf"`} {
		if got := strings.Count(text, le); got != 1 {
			t.Errorf("label %s appears %d times, want 1:\n%s", le, got, text)
		}
	}
	if strings.Contains(text, "NaN") {
		t.Errorf("NaN leaked into exposition:\n%s", text)
	}
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := New()
	r.Counter("m", "", Labels{"b": "2", "a": `x"y\z`}).Inc()
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := `m{a="x\"y\\z",b="2"} 1`
	if !strings.Contains(out.String(), want+"\n") {
		t.Errorf("want %q in:\n%s", want, out.String())
	}
}

func TestExpositionFormat(t *testing.T) {
	r := New()
	r.Counter("a_total", "first metric", nil).Add(7)
	r.Gauge("b", "", Labels{"k": "v"}).Set(1.25)
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_total first metric\n# TYPE a_total counter\na_total 7\n# TYPE b gauge\nb{k=\"v\"} 1.25\n"
	if out.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", out.String(), want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run with -race in CI.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c", "", nil).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h", "", []float64{0.5}, Labels{"w": "x"}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "", nil).Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g", "", nil).Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	h := r.Histogram("h", "", nil, Labels{"w": "x"})
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if math.Abs(h.Sum()-0.25*workers*iters) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), 0.25*workers*iters)
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
}
