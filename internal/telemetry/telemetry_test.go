package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instance.
	if r.Counter("reqs_total", "requests", nil) != c {
		t.Error("re-lookup returned a different counter")
	}
	// Different labels make a distinct series.
	c2 := r.Counter("reqs_total", "requests", Labels{"view": "v"})
	if c2 == c {
		t.Error("labeled series must be distinct")
	}
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth", "", nil)
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
	r.GaugeFunc("uptime", "", nil, func() float64 { return 42 })
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "uptime 42\n") {
		t.Errorf("func gauge missing:\n%s", out.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4}, nil)
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", h.Sum())
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Cumulative: ≤1 holds {0.5, 1}, ≤2 adds 1.5, ≤4 adds 3, +Inf adds 100.
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 106`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := New()
	r.Counter("m", "", Labels{"b": "2", "a": `x"y\z`}).Inc()
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := `m{a="x\"y\\z",b="2"} 1`
	if !strings.Contains(out.String(), want+"\n") {
		t.Errorf("want %q in:\n%s", want, out.String())
	}
}

func TestExpositionFormat(t *testing.T) {
	r := New()
	r.Counter("a_total", "first metric", nil).Add(7)
	r.Gauge("b", "", Labels{"k": "v"}).Set(1.25)
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_total first metric\n# TYPE a_total counter\na_total 7\n# TYPE b gauge\nb{k=\"v\"} 1.25\n"
	if out.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", out.String(), want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// run with -race in CI.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c", "", nil).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h", "", []float64{0.5}, Labels{"w": "x"}).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "", nil).Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g", "", nil).Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	h := r.Histogram("h", "", nil, Labels{"w": "x"})
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if math.Abs(h.Sum()-0.25*workers*iters) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), 0.25*workers*iters)
	}
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
}
