// Package telemetry is a dependency-free metrics registry for the SMOQE
// serving layer: atomic counters, gauges and fixed-bucket latency
// histograms, with Prometheus text-format exposition (see
// WritePrometheus). It exists so the server can report the §7 evaluation
// numbers — per-query pruning rates, candidate-DAG sizes, latency
// distributions — without pulling a client library into the module.
//
// All metric operations (Add, Inc, Set, Observe) are safe for concurrent
// use and lock-free; registration and exposition take a registry lock.
// Looking up an already-registered metric (same name and labels) returns
// the existing instance, so hot paths may call Registry.Counter(...) per
// request, though caching the handle is cheaper.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric instance's label set. Instances of the same family
// (same name) with different label values become separate series.
type Labels map[string]string

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds — the conventional Prometheus spread from 500µs to 10s, which
// brackets everything from a cache-hit HyPE run on the sample document to
// a cold rewrite of a large recursive view.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // if non-nil, the gauge is read-only and computed at scrape time
}

// Set sets the gauge. No-op on a func-backed gauge.
func (g *Gauge) Set(v float64) {
	if g.fn == nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds v (which may be negative). No-op on a func-backed gauge.
func (g *Gauge) Add(v float64) {
	if g.fn != nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution; Observe is lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf after the last
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~15); linear scan beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind discriminates family types for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (labels, metric) instance of a family.
type series struct {
	labels Labels
	key    string // canonical sorted label rendering, for lookup and stable output
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histograms only
	order   []string  // series keys in first-registration order
	series  map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call New.
type Registry struct {
	mu sync.Mutex
	// families is guarded by mu.
	families map[string]*family
	names    []string // guarded by mu; family names in first-registration order
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the family for name, panicking on a
// kind mismatch. Caller holds r.mu.
func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) instance(labels Labels) *series {
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: cloneLabels(labels), key: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter name{labels}, creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindCounter).instance(labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the settable gauge name{labels}, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindGauge).instance(labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values another subsystem already tracks (cache sizes,
// uptime). Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, kindGauge).instance(labels)
	s.g = &Gauge{fn: fn}
}

// Histogram returns the histogram name{labels} with the given bucket
// upper bounds (nil means DefBuckets), creating it on first use. Bounds
// are sorted, duplicates are collapsed, and NaN/±Inf entries are dropped;
// an implicit +Inf bucket is always present. Each bound b is the upper
// edge of a `le` (less-or-equal) bucket, so a sample exactly equal to b
// lands in b's bucket, never the next one up.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	if f.buckets == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		f.buckets = normalizeBounds(buckets)
	}
	s := f.instance(labels)
	if s.h == nil {
		s.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}
	return s.h
}

// normalizeBounds sorts bucket upper bounds and removes entries that
// would corrupt the series: duplicates (two buckets with the same `le`
// label are invalid exposition), ±Inf (the +Inf bucket is implicit and
// emitting it twice duplicates its series), and NaN (every comparison
// against NaN is false, so Observe would misroute samples).
func normalizeBounds(buckets []float64) []float64 {
	b := make([]float64, 0, len(buckets))
	for _, v := range buckets {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		b = append(b, v)
	}
	sort.Float64s(b)
	out := b[:0]
	for i, v := range b {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	cp := make(Labels, len(l))
	for k, v := range l {
		cp[k] = v
	}
	return cp
}

// labelKey renders labels sorted by key: `a="1",b="2"`. Empty labels → "".
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}
