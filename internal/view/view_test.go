package view_test

import (
	"strings"
	"testing"

	"smoqe/internal/dtd"
	"smoqe/internal/hospital"
	"smoqe/internal/refeval"
	"smoqe/internal/view"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

func TestParseSigma0(t *testing.T) {
	v := hospital.Sigma0()
	if v.Name != "sigma0" {
		t.Errorf("name = %q", v.Name)
	}
	if len(v.Ann) != 6 {
		t.Errorf("annotations = %d, want 6", len(v.Ann))
	}
	if !v.IsRecursive() {
		t.Error("σ0 must be recursive (patient → parent → patient in D_V)")
	}
	if q := v.Query("patient", "record"); q == nil || q.String() != "visit" {
		t.Errorf("σ(patient,record) = %v", q)
	}
	if v.Size() <= 6 {
		t.Errorf("|σ| = %d, suspiciously small", v.Size())
	}
}

func TestViewStringRoundTrip(t *testing.T) {
	v := hospital.Sigma0()
	v2, err := view.Parse(v.String(), hospital.DocDTD(), hospital.ViewDTD())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, v.String())
	}
	if v.String() != v2.String() {
		t.Errorf("round trip changed view:\n%s\nvs\n%s", v.String(), v2.String())
	}
}

func TestParseAndCheckErrors(t *testing.T) {
	src := hospital.DocDTD()
	tgt := hospital.ViewDTD()
	cases := map[string]string{
		"missing keyword": `sigma { hospital/patient = department/patient; }`,
		"missing edge annotation": `view s {
			hospital/patient = department/patient;
		}`, // other edges unannotated
		"not an edge": `view s {
			hospital/patient = department/patient;
			patient/parent = parent; patient/record = visit;
			parent/patient = patient; record/empty = treatment/test;
			record/diagnosis = treatment/medication/diagnosis;
			hospital/record = visit;
		}`,
		"unknown label in query": `view s {
			hospital/patient = department/inmate;
			patient/parent = parent; patient/record = visit;
			parent/patient = patient; record/empty = treatment/test;
			record/diagnosis = treatment/medication/diagnosis;
		}`,
		"duplicate edge": `view s {
			hospital/patient = department/patient;
			hospital/patient = department/patient;
		}`,
		"bad query syntax": `view s {
			hospital/patient = department/;
		}`,
		"missing semicolon": `view s {
			hospital/patient = department/patient
		}`,
	}
	for name, s := range cases {
		if _, err := view.Parse(s, src, tgt); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestMaterializeSigma0OnSample(t *testing.T) {
	v := hospital.Sigma0()
	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	// The view must conform to the view DTD.
	if err := hospital.ViewDTD().CheckDocument(mat.Doc); err != nil {
		t.Fatalf("materialized view does not conform to D_V: %v", err)
	}
	// Exactly the heart-disease patients appear at the top: Alice, Erin.
	top := mat.Doc.Root.ElementChildren()
	if len(top) != 2 {
		t.Fatalf("top-level view patients = %d, want 2 (Alice, Erin)", len(top))
	}
	// Their source nodes must be patient elements with heart disease.
	for _, p := range top {
		src := mat.Src[p]
		if src == nil || src.Label != "patient" {
			t.Fatalf("provenance of view patient missing or wrong: %v", src)
		}
	}
	// Alice's parent chain: Bob (no diagnosis in view; record is empty),
	// then Carol with heart disease.
	alice := top[0]
	var parents []*xmltree.Node
	for _, c := range alice.ElementChildren() {
		if c.Label == "parent" {
			parents = append(parents, c)
		}
	}
	if len(parents) != 1 {
		t.Fatalf("Alice parents in view = %d, want 1", len(parents))
	}
	bob := parents[0].ElementChildren()[0]
	// Bob's record must be empty (his visit was a test).
	var bobRecords, bobParents int
	for _, c := range bob.ElementChildren() {
		switch c.Label {
		case "record":
			bobRecords++
			if len(c.ElementChildren()) != 1 || c.ElementChildren()[0].Label != "empty" {
				t.Errorf("Bob's record should hold <empty/>, got %v", c.ElementChildren())
			}
		case "parent":
			bobParents++
		}
	}
	if bobRecords != 1 || bobParents != 1 {
		t.Errorf("Bob: records=%d parents=%d, want 1/1", bobRecords, bobParents)
	}
	// The view must NOT contain siblings, names, doctors or tests.
	forbidden := map[string]bool{"sibling": true, "pname": true, "doctor": true, "test": true, "address": true}
	mat.Doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element && forbidden[n.Label] {
			t.Errorf("forbidden label %q leaked into the view", n.Label)
		}
		return true
	})
	// Diagnosis text is copied from the source.
	found := false
	mat.Doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind == xmltree.Element && n.Label == "diagnosis" && n.TextContent() == "heart disease" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("no heart disease diagnosis text in the view")
	}
}

func TestMaterializeProvenanceConsistent(t *testing.T) {
	v := hospital.Sigma0()
	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Every element view node has provenance; children's sources are
	// reachable from their parent's source via the edge query.
	mat.Doc.Walk(func(n *xmltree.Node) bool {
		if n.Kind != xmltree.Element {
			return true
		}
		src, ok := mat.Src[n]
		if !ok {
			t.Fatalf("view node %s has no provenance", n.Path())
		}
		for _, c := range n.ElementChildren() {
			q := v.Query(n.Label, c.Label)
			if q == nil {
				t.Fatalf("no annotation for edge %s/%s", n.Label, c.Label)
			}
			csrc := mat.Src[c]
			ok := false
			for _, m := range refeval.Eval(q, src) {
				if m == csrc {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("child %s source not in σ(%s,%s) of parent source", c.Path(), n.Label, c.Label)
			}
		}
		return true
	})
}

func TestMaterializeQueryOnViewEqualsPaperExample(t *testing.T) {
	// Example 1.1: on the sample data, Q = patient[*//record/diagnosis/
	// text()='heart disease'] over the view selects Alice only (her
	// grandmother Carol had heart disease; Erin's ancestors are healthy).
	// Dan (sibling, heart disease) must not make Erin or anyone else
	// selected — siblings are not in the view.
	v := hospital.Sigma0()
	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	q := xpath.MustParse(hospital.QExample11)
	got := refeval.Eval(q, mat.Doc.Root)
	if len(got) != 1 {
		t.Fatalf("Q(σ0(T)) = %d nodes, want 1 (Alice)", len(got))
	}
	src := mat.Src[got[0]]
	// Check that the source patient is indeed Alice by her pname child.
	name := ""
	for _, c := range src.ElementChildren() {
		if c.Label == "pname" {
			name = c.TextContent()
		}
	}
	if name != "Alice" {
		t.Errorf("selected patient = %q, want Alice", name)
	}
}

func TestMaterializeNonTerminating(t *testing.T) {
	src := dtd.MustParse(`dtd s { root a; a -> b*; b -> #text; }`)
	tgt := dtd.MustParse(`dtd t { root a; a -> a*; }`)
	v := &view.View{
		Name:   "loop",
		Source: src,
		Target: tgt,
		Ann:    map[view.Edge]xpath.Path{{"a", "a"}: xpath.MustParse(".")},
	}
	if err := v.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	doc, err := xmltree.ParseString(`<a><b>x</b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.Materialize(v, doc); err == nil {
		t.Error("non-terminating view must be detected")
	} else if !strings.Contains(err.Error(), "non-terminating") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestMaterializeRelabeling(t *testing.T) {
	// A view that renames visit → record demonstrates relabeling: view
	// node labels come from the view DTD, not the source.
	src := dtd.MustParse(`dtd s { root r; r -> v*; v -> d; d -> #text; }`)
	tgt := dtd.MustParse(`dtd t { root root2; root2 -> rec*; rec -> #text; }`)
	_ = src
	v := &view.View{
		Name:   "rename",
		Source: src,
		Target: tgt,
		Ann: map[view.Edge]xpath.Path{
			{"root2", "rec"}: xpath.MustParse("v/d"),
		},
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<r><v><d>one</d></v><v><d>two</d></v></r>`)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	recs := mat.Doc.Root.ElementChildren()
	if len(recs) != 2 || recs[0].Label != "rec" {
		t.Fatalf("view children: %v", recs)
	}
	if recs[0].TextContent() != "one" || recs[1].TextContent() != "two" {
		t.Errorf("text copy failed: %q, %q", recs[0].TextContent(), recs[1].TextContent())
	}
	if mat.Doc.Root.Label != "root2" {
		t.Errorf("view root label = %q", mat.Doc.Root.Label)
	}
}

func TestSourceOfDedup(t *testing.T) {
	v := hospital.Sigma0()
	doc := hospital.SampleDocument()
	mat, err := view.Materialize(v, doc)
	if err != nil {
		t.Fatal(err)
	}
	tops := mat.Doc.Root.ElementChildren()
	dup := append(append([]*xmltree.Node{}, tops...), tops...)
	srcs := mat.SourceOf(dup)
	if len(srcs) != len(tops) {
		t.Errorf("SourceOf must dedup: %d vs %d", len(srcs), len(tops))
	}
}

func TestMaterializeBounded(t *testing.T) {
	// A view that squares the fan-out at every level: terminating but
	// exponentially larger than the source.
	src := dtd.MustParse(`dtd s { root a; a -> b*; b -> b*, c*; c -> #text; }`)
	tgt := dtd.MustParse(`dtd t { root a; a -> b*; b -> b*, c*; c -> #text; }`)
	v := &view.View{
		Name:   "explode",
		Source: src,
		Target: tgt,
		Ann: map[view.Edge]xpath.Path{
			{Parent: "a", Child: "b"}: xpath.MustParse("b | b/b | b/b/b"),
			{Parent: "b", Child: "b"}: xpath.MustParse("b | b/b | b/b/b"),
			{Parent: "b", Child: "c"}: xpath.MustParse("c | (*)*/c"),
		},
	}
	if err := v.Check(); err != nil {
		t.Fatal(err)
	}
	// Deep source chain.
	var b strings.Builder
	b.WriteString("<a>")
	for i := 0; i < 12; i++ {
		b.WriteString("<b>")
	}
	b.WriteString("<c>x</c>")
	for i := 0; i < 12; i++ {
		b.WriteString("</b>")
	}
	b.WriteString("</a>")
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.MaterializeBounded(v, doc, 1_000); err == nil {
		t.Error("exploding view must exceed the budget")
	} else if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("unexpected error: %v", err)
	}
	// A generous budget on a sane view succeeds.
	if _, err := view.MaterializeBounded(hospital.Sigma0(), hospital.SampleDocument(), 1_000_000); err != nil {
		t.Errorf("bounded materialization of σ0 failed: %v", err)
	}
}

func TestViewSpecQuotedSemicolon(t *testing.T) {
	// Semicolons and braces inside quoted constants must not terminate
	// the annotation.
	src := dtd.MustParse(`dtd s { root a; a -> b*; b -> #text; }`)
	tgt := dtd.MustParse(`dtd t { root a; a -> x*; x -> #text; }`)
	v, err := view.Parse(`view q {
		a/x = b[text()='odd; value }'];
	}`, src, tgt)
	if err != nil {
		t.Fatalf("quoted semicolon: %v", err)
	}
	q := v.Query("a", "x")
	if q == nil || q.String() != "b[text()='odd; value }']" {
		t.Errorf("annotation = %v", q)
	}
	// Unterminated quote is an error, not a hang.
	if _, err := view.Parse(`view q { a/x = b[text()='unterminated; }`, src, tgt); err == nil {
		t.Error("unterminated quote must fail")
	}
}

func TestViewAnnotationDescendantAxis(t *testing.T) {
	// '//' inside an annotation is the descendant axis; '#' is the
	// comment marker.
	src := dtd.MustParse(`dtd s { root a; a -> b*; b -> c*; c -> #text; }`)
	tgt := dtd.MustParse(`dtd t { root a; a -> x*; x -> #text; }`)
	v, err := view.Parse(`view q {
		# every c anywhere below
		a/x = b//c;  # trailing comment
	}`, src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Query("a", "x").String(); got != "b/**/c" {
		t.Errorf("annotation = %q", got)
	}
}
