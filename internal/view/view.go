// Package view implements XML views defined by DTD annotation (§2.3 of the
// paper): a view σ : D → D_V maps every edge (A,B) of the view DTD D_V to
// an Xreg query σ(A,B) over documents of the source DTD D, in the style of
// Oracle AXSD, SQLServer annotated XSDs and IBM DB2 DADs. The package
// provides the view definition, a textual specification format, validation,
// and a materializer that records the source node behind every view node
// (provenance), which is what makes exact correctness testing of the
// rewriting algorithm possible.
package view

import (
	"fmt"
	"sort"
	"strings"

	"smoqe/internal/dtd"
	"smoqe/internal/refeval"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

// Edge identifies an edge (Parent, Child) of the view DTD graph.
type Edge struct {
	Parent, Child string
}

func (e Edge) String() string { return e.Parent + "/" + e.Child }

// View is a view definition σ : D → D_V.
type View struct {
	Name string
	// Source is the document DTD D.
	Source *dtd.DTD
	// Target is the view DTD D_V. The view is recursive iff Target is.
	Target *dtd.DTD
	// Ann maps each edge (A,B) of the view DTD to the query σ(A,B) over
	// the source document that computes the B-children of an A element.
	Ann map[Edge]xpath.Path
}

// IsRecursive reports whether the view is recursively defined (§2.3: the
// view is recursive iff the view DTD is).
func (v *View) IsRecursive() bool { return v.Target.IsRecursive() }

// Query returns σ(A,B), or nil if the edge is not annotated.
func (v *View) Query(parent, child string) xpath.Path {
	return v.Ann[Edge{parent, child}]
}

// Size returns |σ|: the total AST size of all annotating queries.
func (v *View) Size() int {
	n := 0
	for _, q := range v.Ann {
		n += q.Size()
	}
	return n
}

// Check validates the view definition: both DTDs must be valid, every edge
// of the view DTD reachable from its root must carry an annotation, no
// annotation may reference a non-edge, and every label used in an
// annotating query must be an element type of the source DTD.
func (v *View) Check() error {
	if v.Source == nil || v.Target == nil {
		return fmt.Errorf("view %q: missing source or target DTD", v.Name)
	}
	if err := v.Source.Validate(); err != nil {
		return fmt.Errorf("view %q: source: %w", v.Name, err)
	}
	if err := v.Target.Validate(); err != nil {
		return fmt.Errorf("view %q: target: %w", v.Name, err)
	}
	reach := v.Target.Reachable()
	for a := range reach {
		for _, b := range v.Target.ChildTypes(a) {
			if _, ok := v.Ann[Edge{a, b}]; !ok {
				return fmt.Errorf("view %q: edge %s/%s of the view DTD has no annotation", v.Name, a, b)
			}
		}
	}
	for e, q := range v.Ann {
		if !v.Target.HasType(e.Parent) {
			return fmt.Errorf("view %q: annotation %s: %q is not a view type", v.Name, e, e.Parent)
		}
		found := false
		for _, b := range v.Target.ChildTypes(e.Parent) {
			if b == e.Child {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("view %q: annotation %s: not an edge of the view DTD", v.Name, e)
		}
		if err := checkLabels(q, v.Source); err != nil {
			return fmt.Errorf("view %q: annotation %s: %w", v.Name, e, err)
		}
	}
	return nil
}

func checkLabels(q xpath.Path, d *dtd.DTD) error {
	var pathErr func(p xpath.Path) error
	var predErr func(p xpath.Pred) error
	pathErr = func(p xpath.Path) error {
		switch t := p.(type) {
		case xpath.Empty, xpath.Wildcard:
			return nil
		case *xpath.Label:
			if !d.HasType(t.Name) {
				return fmt.Errorf("label %q is not declared in source DTD %q", t.Name, d.Name)
			}
			return nil
		case *xpath.Seq:
			if err := pathErr(t.Left); err != nil {
				return err
			}
			return pathErr(t.Right)
		case *xpath.Union:
			if err := pathErr(t.Left); err != nil {
				return err
			}
			return pathErr(t.Right)
		case *xpath.Star:
			return pathErr(t.Sub)
		case *xpath.Filter:
			if err := pathErr(t.Path); err != nil {
				return err
			}
			return predErr(t.Cond)
		default:
			return fmt.Errorf("unknown path node %T", p)
		}
	}
	predErr = func(p xpath.Pred) error {
		switch t := p.(type) {
		case *xpath.Exists:
			return pathErr(t.Path)
		case *xpath.TextEq:
			return pathErr(t.Path)
		case *xpath.PosEq:
			return pathErr(t.Path)
		case *xpath.Not:
			return predErr(t.Sub)
		case *xpath.And:
			if err := predErr(t.Left); err != nil {
				return err
			}
			return predErr(t.Right)
		case *xpath.Or:
			if err := predErr(t.Left); err != nil {
				return err
			}
			return predErr(t.Right)
		default:
			return fmt.Errorf("unknown predicate node %T", p)
		}
	}
	return pathErr(q)
}

// String renders the view in the textual format accepted by Parse.
func (v *View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view %s {\n", v.Name)
	edges := make([]Edge, 0, len(v.Ann))
	for e := range v.Ann {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Parent != edges[j].Parent {
			return edges[i].Parent < edges[j].Parent
		}
		return edges[i].Child < edges[j].Child
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %s/%s = %s;\n", e.Parent, e.Child, v.Ann[e])
	}
	b.WriteString("}\n")
	return b.String()
}

// Identity returns the identity view over d: every DTD edge (A,B) is
// annotated with the single step B, so σ(T) = T for every document of d.
// Rewriting a query (or MFA) over the identity view specializes it to the
// DTD: transitions that no document of d can take are removed, which both
// shrinks the automaton and acts as a static "type check" of the query
// against the schema (an automaton with no final states can never match).
func Identity(d *dtd.DTD) *View {
	v := &View{Name: "identity(" + d.Name + ")", Source: d, Target: d, Ann: make(map[Edge]xpath.Path)}
	for a := range d.Reachable() {
		for _, b := range d.ChildTypes(a) {
			v.Ann[Edge{Parent: a, Child: b}] = &xpath.Label{Name: b}
		}
	}
	return v
}

// Parse reads a view specification in the textual format:
//
//	view sigma0 {
//	  hospital/patient = department/patient[...];  # σ(hospital, patient)
//	  patient/parent   = parent;
//	  ...
//	}
//
// Each line annotates one view-DTD edge with an Xreg query over the source.
// "#" starts a line comment ("//" would be ambiguous with the descendant
// axis inside annotations). The caller supplies the two DTDs; Parse
// validates the result with Check.
func Parse(src string, source, target *dtd.DTD) (*View, error) {
	v := &View{Source: source, Target: target, Ann: make(map[Edge]xpath.Path)}
	s := newScanner(src)
	if !s.eatWord("view") {
		return nil, fmt.Errorf("view: line %d: expected keyword \"view\"", s.line)
	}
	name, ok := s.ident()
	if !ok {
		return nil, fmt.Errorf("view: line %d: expected view name", s.line)
	}
	v.Name = name
	if !s.eatTok("{") {
		return nil, fmt.Errorf("view: line %d: expected \"{\"", s.line)
	}
	for {
		if s.eatTok("}") {
			break
		}
		parent, ok := s.ident()
		if !ok {
			return nil, fmt.Errorf("view: line %d: expected view type or \"}\"", s.line)
		}
		if !s.eatTok("/") {
			return nil, fmt.Errorf("view: line %d: expected \"/\" after %q", s.line, parent)
		}
		child, ok := s.ident()
		if !ok {
			return nil, fmt.Errorf("view: line %d: expected child type after %q/", s.line, parent)
		}
		if !s.eatTok("=") {
			return nil, fmt.Errorf("view: line %d: expected \"=\" after edge %s/%s", s.line, parent, child)
		}
		qsrc, ok := s.untilSemi()
		if !ok {
			return nil, fmt.Errorf("view: line %d: missing \";\" after annotation of %s/%s", s.line, parent, child)
		}
		q, err := xpath.Parse(qsrc)
		if err != nil {
			return nil, fmt.Errorf("view: edge %s/%s: %w", parent, child, err)
		}
		e := Edge{parent, child}
		if _, dup := v.Ann[e]; dup {
			return nil, fmt.Errorf("view: edge %s annotated twice", e)
		}
		v.Ann[e] = q
	}
	s.skipSpace()
	if !s.done() {
		return nil, fmt.Errorf("view: line %d: trailing input after \"}\"", s.line)
	}
	if err := v.Check(); err != nil {
		return nil, err
	}
	return v, nil
}

// MustParse is Parse but panics on error; intended for fixtures.
func MustParse(src string, source, target *dtd.DTD) *View {
	v, err := Parse(src, source, target)
	if err != nil {
		panic(err)
	}
	return v
}

type scanner struct {
	src  string
	pos  int
	line int
}

func newScanner(src string) *scanner { return &scanner{src: src, line: 1} }

func (s *scanner) done() bool { return s.pos >= len(s.src) }

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch {
		case c == '\n':
			s.line++
			s.pos++
		case c == ' ' || c == '\t' || c == '\r':
			s.pos++
		case c == '#':
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
		default:
			return
		}
	}
}

func (s *scanner) eatTok(tok string) bool {
	s.skipSpace()
	if strings.HasPrefix(s.src[s.pos:], tok) {
		s.pos += len(tok)
		return true
	}
	return false
}

func (s *scanner) eatWord(w string) bool {
	s.skipSpace()
	rest := s.src[s.pos:]
	if !strings.HasPrefix(rest, w) {
		return false
	}
	if len(rest) > len(w) && isIdent(rest[len(w)]) {
		return false
	}
	s.pos += len(w)
	return true
}

func (s *scanner) ident() (string, bool) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) && isIdent(s.src[s.pos]) {
		s.pos++
	}
	if s.pos == start {
		return "", false
	}
	return s.src[start:s.pos], true
}

// untilSemi returns the raw text up to the next ';' outside of quotes.
func (s *scanner) untilSemi() (string, bool) {
	s.skipSpace()
	start := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ';' {
			out := s.src[start:s.pos]
			s.pos++
			return out, true
		}
		if c == '\'' || c == '"' {
			q := c
			s.pos++
			for s.pos < len(s.src) && s.src[s.pos] != q {
				if s.src[s.pos] == '\n' {
					s.line++
				}
				s.pos++
			}
			if s.pos >= len(s.src) {
				return "", false
			}
		}
		if c == '\n' {
			s.line++
		}
		s.pos++
	}
	return "", false
}

func isIdent(c byte) bool {
	return c == '_' || c == '-' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// Materialization is the result of applying a view to a document: the view
// document σ(T) plus provenance linking every view node to the source node
// it was extracted from.
type Materialization struct {
	Doc *xmltree.Document
	// Src maps each element node of Doc to the source node it represents;
	// the view root maps to the source root.
	Src map[*xmltree.Node]*xmltree.Node
}

// SourceOf returns the source nodes behind the given view nodes, in
// document order without duplicates (distinct view nodes may share a
// source node in recursive views).
func (m *Materialization) SourceOf(viewNodes []*xmltree.Node) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, len(viewNodes))
	for _, v := range viewNodes {
		if s, ok := m.Src[v]; ok {
			out = append(out, s)
		}
	}
	return xmltree.SortNodes(out)
}

// Materialize computes σ(T) top-down per Example 2.2 of the paper: the view
// root corresponds to the source root; for a view node of type A backed by
// source node n, its B-children are the nodes n[[σ(A,B)]], in document
// order, for each B in production order of A. Str view types copy the text
// content of their source node.
//
// A view definition whose expansion revisits the same (view type, source
// node) pair along one materialization path would generate an infinite
// document; Materialize detects this and returns an error.
func Materialize(v *View, doc *xmltree.Document) (*Materialization, error) {
	return MaterializeBounded(v, doc, 0)
}

// MaterializeBounded is Materialize with a node budget: a view whose
// expansion exceeds maxNodes element nodes fails with an error instead of
// exhausting memory (annotations may copy whole subtrees many times, so a
// terminating view can still be exponentially larger than its source).
// maxNodes <= 0 means no limit.
func MaterializeBounded(v *View, doc *xmltree.Document, maxNodes int) (*Materialization, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("view %q: empty source document", v.Name)
	}
	out := xmltree.NewDocument(v.Target.Root)
	mat := &Materialization{
		Doc: out,
		Src: map[*xmltree.Node]*xmltree.Node{out.Root: doc.Root},
	}
	type key struct {
		typ string
		src *xmltree.Node
	}
	onPath := make(map[key]bool)
	var expand func(viewNode *xmltree.Node, typ string, src *xmltree.Node) error
	expand = func(viewNode *xmltree.Node, typ string, src *xmltree.Node) error {
		k := key{typ, src}
		if onPath[k] {
			return fmt.Errorf("view %q: non-terminating expansion: type %q revisits source node %s", v.Name, typ, src.Path())
		}
		onPath[k] = true
		defer delete(onPath, k)

		p, ok := v.Target.Prods[typ]
		if !ok {
			return fmt.Errorf("view %q: view type %q not declared", v.Name, typ)
		}
		if maxNodes > 0 && out.NumNodes() > maxNodes {
			return fmt.Errorf("view %q: materialization exceeds %d nodes", v.Name, maxNodes)
		}
		switch p.Kind {
		case dtd.Empty:
			return nil
		case dtd.Str:
			if txt := src.TextContent(); txt != "" {
				out.AddText(viewNode, txt)
			}
			return nil
		case dtd.Seq, dtd.Choice:
			for _, term := range p.Terms {
				q := v.Ann[Edge{typ, term.Type}]
				if q == nil {
					return fmt.Errorf("view %q: edge %s/%s has no annotation", v.Name, typ, term.Type)
				}
				for _, m := range refeval.Eval(q, src) {
					child := out.AddElement(viewNode, term.Type)
					mat.Src[child] = m
					if err := expand(child, term.Type, m); err != nil {
						return err
					}
				}
			}
			return nil
		default:
			return fmt.Errorf("view %q: type %q: unknown production kind", v.Name, typ)
		}
	}
	if err := expand(out.Root, v.Target.Root, doc.Root); err != nil {
		return nil, err
	}
	return mat, nil
}
