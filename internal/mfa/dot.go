package mfa

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the MFA in Graphviz DOT format, in the visual style of
// Fig. 3 of the paper: the selecting NFA as one cluster (double circles
// for final states, dashed guard edges labeled λ=X_i) and each AFA as its
// own cluster (diamonds for operator states, boxes for transitions,
// double octagons for finals with their predicates).
func (m *MFA) WriteDOT(w io.Writer) error {
	ew := &errWriter{w: w}
	name := m.Name
	if name == "" {
		name = "MFA"
	}
	ew.printf("digraph %q {\n", name)
	ew.printf("  rankdir=LR;\n  fontname=\"Helvetica\";\n  node [fontname=\"Helvetica\"];\n")
	ew.printf("  subgraph cluster_nfa {\n    label=\"selecting NFA\";\n")
	ew.printf("    start [shape=point];\n")
	for i := range m.States {
		st := &m.States[i]
		shape := "circle"
		if st.Final {
			shape = "doublecircle"
		}
		ew.printf("    s%d [shape=%s,label=\"s%d\"];\n", i, shape, i)
	}
	ew.printf("    start -> s%d;\n", m.Start)
	for i := range m.States {
		st := &m.States[i]
		for _, t := range st.Eps {
			ew.printf("    s%d -> s%d [label=\"ε\"];\n", i, t)
		}
		for _, e := range st.Trans {
			ew.printf("    s%d -> s%d [label=%q];\n", i, e.To, e.stepString())
		}
	}
	ew.printf("  }\n")
	for g, a := range m.AFAs {
		ew.printf("  subgraph cluster_afa%d {\n    label=\"X%d\";\n", g, g)
		for i := range a.States {
			st := &a.States[i]
			switch st.Kind {
			case AFAOr, AFAAnd, AFANot:
				ew.printf("    a%d_%d [shape=diamond,label=\"%s\"];\n", g, i, st.Kind)
			case AFATrans:
				lbl := st.Label
				if st.Wild {
					lbl = "*"
				}
				ew.printf("    a%d_%d [shape=box,label=%q];\n", g, i, lbl)
			case AFAFinal:
				ew.printf("    a%d_%d [shape=doubleoctagon,label=\"true%s\"];\n", g, i, escapeDOT(st.Pred.String()))
			}
		}
		for i := range a.States {
			st := &a.States[i]
			for _, k := range st.Kids {
				style := ""
				if st.Kind == AFATrans {
					style = " [style=bold]"
				}
				ew.printf("    a%d_%d -> a%d_%d%s;\n", g, i, g, k, style)
			}
		}
		ew.printf("  }\n")
	}
	// Guard annotations: dashed edges from NFA states to AFA entries.
	for i := range m.States {
		if m.States[i].Guard < 0 {
			continue
		}
		g := m.States[i].Guard
		ew.printf("  s%d -> a%d_%d [style=dashed,label=\"λ=X%d\"];\n", i, g, m.GuardEntry(i), g)
	}
	ew.printf("}\n")
	return ew.err
}

// DOT returns the WriteDOT output as a string.
func (m *MFA) DOT() string {
	var b strings.Builder
	_ = m.WriteDOT(&b)
	return b.String()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func escapeDOT(s string) string {
	return strings.NewReplacer(`"`, `\"`, "\n", " ").Replace(s)
}
