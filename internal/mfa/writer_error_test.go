package mfa

import (
	"errors"
	"testing"

	"smoqe/internal/xpath"
)

// failWriter fails after n bytes, exercising error propagation through the
// buffered encoders.
type failWriter struct{ n int }

var errSink = errors.New("sink full")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errSink
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteBinaryError(t *testing.T) {
	m := MustCompile(xpath.MustParse("a[b/text()='v']/(c/d)*"))
	for _, budget := range []int{0, 1, 7, 64} {
		if err := m.WriteBinary(&failWriter{n: budget}); err == nil {
			t.Errorf("budget %d: want write error", budget)
		}
	}
}

func TestWriteDOTError(t *testing.T) {
	m := MustCompile(xpath.MustParse("a[b]"))
	for _, budget := range []int{0, 10, 100} {
		if err := m.WriteDOT(&failWriter{n: budget}); err == nil {
			t.Errorf("budget %d: want write error", budget)
		}
	}
}
