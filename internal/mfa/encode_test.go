package mfa

import (
	"bytes"
	"strings"
	"testing"

	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

func TestBinaryRoundTrip(t *testing.T) {
	queries := []string{
		".",
		"a/b[c]",
		"(a/b)*/c[d/text()='v' and not(e)]",
		"a[b/position()=2] | c/*",
		"a[(b/c)*/d]",
	}
	doc, err := xmltree.ParseString(`<r><a><b><c>v</c></b></a><c><x/></c></r>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range queries {
		m := MustCompile(xpath.MustParse(src))
		var buf bytes.Buffer
		if err := m.WriteBinary(&buf); err != nil {
			t.Fatalf("%q: write: %v", src, err)
		}
		m2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%q: read: %v", src, err)
		}
		if m.String() != m2.String() {
			t.Errorf("%q: round trip changed the automaton:\n%s\nvs\n%s", src, m, m2)
		}
		a, b := Eval(m, doc.Root), Eval(m2, doc.Root)
		if len(a) != len(b) {
			t.Errorf("%q: decoded automaton disagrees: %d vs %d", src, len(a), len(b))
		}
	}
}

func TestBinaryRoundTripTagged(t *testing.T) {
	m1 := MustCompile(xpath.MustParse("a/b"))
	m2 := MustCompile(xpath.MustParse("c[d]"))
	merged, err := Merge([]*MFA{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := merged.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTags() != merged.NumTags() {
		t.Errorf("tags lost: %d vs %d", back.NumTags(), merged.NumTags())
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	m := MustCompile(xpath.MustParse("a[b/text()='v']"))
	var buf bytes.Buffer
	if err := m.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOTSMOQE" + string(good[8:])),
		"truncated":    good[:len(good)/2],
		"truncated-1":  good[:len(good)-1],
		"only magic":   good[:8],
		"version junk": append(append([]byte{}, good[:8]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	// Bit flips must never panic (indices are validated).
	for i := 8; i < len(good); i++ {
		mut := append([]byte{}, good...)
		mut[i] ^= 0x40
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit flip at %d: %v", i, r)
				}
			}()
			_, _ = ReadBinary(bytes.NewReader(mut))
		}()
	}
}

func TestBinaryRejectsHugeCounts(t *testing.T) {
	// A forged header claiming 2^40 states must fail fast, not allocate.
	var buf bytes.Buffer
	buf.WriteString("SMOQEMFA")
	buf.WriteByte(1)                                            // version
	buf.WriteByte(0)                                            // name len
	buf.WriteByte(0)                                            // start
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}) // huge count
	if _, err := ReadBinary(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("want implausible-count error, got %v", err)
	}
}

func TestBinaryRejectsHugeTag(t *testing.T) {
	m := MustCompile(xpath.MustParse("a"))
	// Forge an absurd tag on the final state and ensure a round trip is
	// rejected (Validate runs on decode).
	for i := range m.States {
		if m.States[i].Final {
			m.States[i].Tag = 1 << 40
		}
	}
	var buf bytes.Buffer
	// WriteBinary itself validates; it must refuse.
	if err := m.WriteBinary(&buf); err == nil {
		t.Fatal("WriteBinary accepted a huge tag")
	}
}
