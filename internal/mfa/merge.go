package mfa

import "fmt"

// Merge combines several MFAs into one automaton whose final states carry
// the index of the machine they came from (the Tag field). A single
// evaluation pass — hype.Engine.EvalTagged — then answers all queries at
// once, sharing the document traversal: the multi-query scenario of the
// paper's access-control motivation, where many user groups' (rewritten)
// queries hit the same source document.
func Merge(ms []*MFA) (*MFA, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("mfa: Merge of no automata")
	}
	out := &MFA{Name: "batch"}
	// A fresh shared start state.
	out.States = append(out.States, NFAState{Guard: -1, GuardStart: -1})
	out.Start = 0
	for tag, m := range ms {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("mfa: Merge input %d: %w", tag, err)
		}
		stateBase := len(out.States)
		afaBase := len(out.AFAs)
		out.AFAs = append(out.AFAs, m.AFAs...)
		for i := range m.States {
			st := m.States[i] // copy
			ns := NFAState{
				Guard:      -1,
				GuardStart: st.GuardStart,
				Final:      st.Final,
				Tag:        tag,
			}
			if st.Guard >= 0 {
				ns.Guard = st.Guard + afaBase
			}
			ns.Eps = make([]int, len(st.Eps))
			for j, t := range st.Eps {
				ns.Eps[j] = t + stateBase
			}
			ns.Trans = make([]Edge, len(st.Trans))
			for j, e := range st.Trans {
				ns.Trans[j] = Edge{Label: e.Label, Wild: e.Wild, To: e.To + stateBase}
			}
			out.States = append(out.States, ns)
		}
		out.States[0].Eps = append(out.States[0].Eps, m.Start+stateBase)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("mfa: Merge: internal: %w", err)
	}
	return out, nil
}

// NumTags returns 1 + the largest Tag among final states (the number of
// result buckets EvalTagged produces), or 0 for an automaton without
// finals.
func (m *MFA) NumTags() int {
	n := 0
	for i := range m.States {
		if m.States[i].Final && m.States[i].Tag+1 > n {
			n = m.States[i].Tag + 1
		}
	}
	return n
}
