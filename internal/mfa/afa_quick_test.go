package mfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smoqe/internal/xmltree"
)

// TestQuickAFAFixpointMatchesBruteForce generates random (NOT-free) AFA
// same-node graphs with random transition inputs and checks that the SCC
// fixpoint of EvalAt equals a brute-force least-fixpoint iteration over the
// whole automaton.
func TestQuickAFAFixpointMatchesBruteForce(t *testing.T) {
	n, _ := xmltree.ParseString("<a/>")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numStates := 2 + rng.Intn(14)
		a := &AFA{Start: 0}
		transVals := make([]bool, numStates)
		for i := 0; i < numStates; i++ {
			switch rng.Intn(4) {
			case 0:
				a.States = append(a.States, AFAState{Kind: AFAFinal})
				if rng.Intn(2) == 0 {
					// Unsatisfied text predicate: constant false.
					a.States[i].Pred = Pred{Kind: PredText, Text: "nope"}
				}
			case 1:
				a.States = append(a.States, AFAState{Kind: AFATrans, Label: "x", Kids: []int{rng.Intn(numStates)}})
				transVals[i] = rng.Intn(2) == 0
			default:
				kind := AFAOr
				if rng.Intn(2) == 0 {
					kind = AFAAnd
				}
				k := rng.Intn(3)
				if kind == AFAAnd && k == 0 {
					k = 1 // empty AND is rejected by validation
				}
				kids := make([]int, k)
				for j := range kids {
					kids[j] = rng.Intn(numStates)
				}
				a.States = append(a.States, AFAState{Kind: kind, Kids: kids})
			}
		}
		if err := a.Freeze(); err != nil {
			// NOT-free graphs always freeze; any error is a bug.
			t.Logf("freeze: %v", err)
			return false
		}
		got := a.EvalAt(n.Root, transVals)

		// Brute force: iterate the whole system to a fixpoint from all-false.
		want := make([]bool, numStates)
		for changed := true; changed; {
			changed = false
			for s := 0; s < numStates; s++ {
				if want[s] {
					continue
				}
				var v bool
				st := a.States[s]
				switch st.Kind {
				case AFAFinal:
					v = st.Pred.Holds(n.Root)
				case AFATrans:
					v = transVals[s]
				case AFAAnd:
					v = true
					for _, k := range st.Kids {
						v = v && want[k]
					}
				case AFAOr:
					v = false
					for _, k := range st.Kids {
						v = v || want[k]
					}
				}
				if v {
					want[s] = true
					changed = true
				}
			}
		}
		for s := range got {
			if got[s] != want[s] {
				t.Logf("seed %d: state %d: got %v want %v\n%s", seed, s, got[s], want[s], a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMaskedAgreesWithFull checks EvalAtMasked against EvalAtInto on
// the member states for random closed member sets.
func TestQuickMaskedAgreesWithFull(t *testing.T) {
	n, _ := xmltree.ParseString("<a>v</a>")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numStates := 2 + rng.Intn(14)
		a := &AFA{Start: 0}
		transVals := make([]bool, numStates)
		for i := 0; i < numStates; i++ {
			switch rng.Intn(4) {
			case 0:
				a.States = append(a.States, AFAState{Kind: AFAFinal})
			case 1:
				a.States = append(a.States, AFAState{Kind: AFATrans, Label: "x", Kids: []int{rng.Intn(numStates)}})
				transVals[i] = rng.Intn(2) == 0
			default:
				kids := []int{rng.Intn(numStates)}
				if rng.Intn(2) == 0 {
					kids = append(kids, rng.Intn(numStates))
				}
				a.States = append(a.States, AFAState{Kind: AFAOr, Kids: kids})
			}
		}
		if err := a.Freeze(); err != nil {
			return false
		}
		// Random seed set, closed under same-node children.
		words := (numStates + 63) / 64
		member := make([]uint64, words)
		var close func(s int)
		close = func(s int) {
			if member[s>>6]&(1<<(uint(s)&63)) != 0 {
				return
			}
			member[s>>6] |= 1 << (uint(s) & 63)
			st := a.States[s]
			if st.Kind == AFAOr || st.Kind == AFAAnd || st.Kind == AFANot {
				for _, k := range st.Kids {
					close(k)
				}
			}
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			close(rng.Intn(numStates))
		}
		full := a.EvalAt(n.Root, transVals)
		masked := a.EvalAtMasked(n.Root, transVals, make([]bool, numStates), member)
		for s := 0; s < numStates; s++ {
			if member[s>>6]&(1<<(uint(s)&63)) == 0 {
				continue
			}
			if full[s] != masked[s] {
				t.Logf("seed %d: member state %d: full %v masked %v", seed, s, full[s], masked[s])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
