package mfa

import (
	"strings"
	"testing"

	"smoqe/internal/refeval"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

// viewDoc is the tree of Fig. 4 of the paper (view-shaped hospital data).
func viewDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(`<hospital>
  <patient>
    <parent>
      <patient>
        <record><diagnosis>lung disease</diagnosis></record>
      </patient>
    </parent>
    <record><diagnosis>brain disease</diagnosis></record>
  </patient>
  <patient>
    <parent>
      <patient>
        <record><diagnosis>heart disease</diagnosis></record>
      </patient>
    </parent>
    <record><diagnosis>lung disease</diagnosis></record>
  </patient>
</hospital>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// q0 is Q0 from Example 4.1.
const q0Src = "(patient/parent)*/patient[(parent/patient)*/record/diagnosis/text()='heart disease']"

func TestCompileValidates(t *testing.T) {
	queries := []string{
		".", "a", "*", "a/b", "a | b", "a*", "(a/b)*", "a[b]",
		"a[text()='v']", "a[not(b) and (c or d/text()='v')]",
		q0Src,
		"a[b[c[d/text()='deep']]]",
		"a[(b/c)*/d/position()=2]",
	}
	for _, src := range queries {
		m, err := Compile(xpath.MustParse(src))
		if err != nil {
			t.Errorf("Compile(%q): %v", src, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%q): %v", src, err)
		}
		if m.Size() <= 0 {
			t.Errorf("Size(%q) = %d", src, m.Size())
		}
	}
}

func TestCompileSizeLinear(t *testing.T) {
	// |MFA| must grow linearly with |Q| (no exponential blowup): doubling
	// the query roughly doubles the automaton.
	base := "a[b/text()='v']/(c/d)*"
	small := MustCompile(xpath.MustParse(base))
	big := MustCompile(xpath.MustParse(base + "/" + base + "/" + base + "/" + base))
	if big.Size() > 6*small.Size() {
		t.Errorf("size blowup: 4x query gave %d vs %d", big.Size(), small.Size())
	}
}

func TestEvalMatchesRefOnExamples(t *testing.T) {
	d := viewDoc(t)
	queries := []string{
		".",
		"patient",
		"patient/record",
		"patient/record/diagnosis",
		"*",
		"**",
		"patient | patient/parent",
		"(patient/parent)*",
		"(patient/parent)*/patient",
		q0Src,
		"patient[record]",
		"patient[not(record/diagnosis/text()='lung disease')]",
		"patient[parent/patient/record/diagnosis/text()='heart disease']",
		"patient[record and parent]",
		"patient[record or parent]",
		"patient[(parent/patient)*/record]",
		"patient[parent[patient[record/diagnosis/text()='heart disease']]]",
		"//diagnosis",
		"patient//record",
		"patient[.//diagnosis/text()='heart disease']",
		"patient/record/diagnosis[text()='lung disease']",
		"patient[record/position()=2]",
		".[patient]",
		"(patient | patient/parent/patient)[record]",
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		want := refeval.Eval(q, d.Root)
		m := MustCompile(q)
		got := Eval(m, d.Root)
		if !sameNodes(got, want) {
			t.Errorf("query %q:\n got %v\nwant %v", src, ids(got), ids(want))
		}
	}
}

// TestEvalAtNonRootContext checks evaluation at interior context nodes.
func TestEvalAtNonRootContext(t *testing.T) {
	d := viewDoc(t)
	p1 := d.Root.ElementChildren()[0]
	for _, src := range []string{"parent/patient", "record", "(parent/patient)*", ".[record]"} {
		q := xpath.MustParse(src)
		want := refeval.Eval(q, p1)
		got := Eval(MustCompile(q), p1)
		if !sameNodes(got, want) {
			t.Errorf("at %s, query %q: got %v want %v", p1.Path(), src, ids(got), ids(want))
		}
	}
}

func TestFig3Shape(t *testing.T) {
	// The MFA for Q0 must have exactly one AFA (the single filter,
	// flattened per Example 5.2) and a guarded state.
	m := MustCompile(xpath.MustParse(q0Src))
	if len(m.AFAs) != 1 {
		t.Fatalf("AFAs = %d, want 1", len(m.AFAs))
	}
	guarded := 0
	for i := range m.States {
		if m.States[i].Guard >= 0 {
			guarded++
		}
	}
	if guarded != 1 {
		t.Errorf("guarded states = %d, want 1", guarded)
	}
	// String output mentions the guard annotation like Fig. 3's λ(s4)=X0.
	if s := m.String(); !strings.Contains(s, "λ=X0") {
		t.Errorf("String() missing guard annotation:\n%s", s)
	}
}

func TestNestedFiltersFlattenIntoOneAFA(t *testing.T) {
	// q = p[q1] with q1 = p'[q1'] must produce a single AFA (Example 5.2),
	// not nested automata.
	m := MustCompile(xpath.MustParse("a[b[c[text()='v']]]"))
	if len(m.AFAs) != 1 {
		t.Errorf("nested filters gave %d AFAs, want 1", len(m.AFAs))
	}
	// Three stacked filters on one step still give one AFA per filter.
	m2 := MustCompile(xpath.MustParse("a[b][c][d]"))
	if len(m2.AFAs) != 3 {
		t.Errorf("stacked filters gave %d AFAs, want 3", len(m2.AFAs))
	}
}

func TestAFAEvalBasics(t *testing.T) {
	d, err := xmltree.ParseString(`<a><b>x</b><c><b>y</b></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pred string
		want bool
	}{
		{"b", true},
		{"d", false},
		{"b/text()='x'", true},
		{"b/text()='y'", false},
		{"c/b/text()='y'", true},
		{"not(d)", true},
		{"b and c", true},
		{"b and d", false},
		{"d or c", true},
		{"(*)*/b/text()='y'", true},
		{"not(b) or c/b", true},
		{"c/position()=2", true},
		{"b/position()=2", false},
		{"not(not(b))", true},
	}
	for _, c := range cases {
		p, err := xpath.ParsePred(c.pred)
		if err != nil {
			t.Fatalf("ParsePred(%q): %v", c.pred, err)
		}
		afa, err := BuildAFA(p)
		if err != nil {
			t.Fatalf("BuildAFA(%q): %v", c.pred, err)
		}
		got := evalAFAAt(afa, d.Root)
		if got != c.want {
			t.Errorf("pred %q at root = %v, want %v", c.pred, got, c.want)
		}
		if want2 := refeval.Holds(p, d.Root); got != want2 {
			t.Errorf("pred %q: AFA %v vs refeval %v", c.pred, got, want2)
		}
	}
}

// evalAFAAt evaluates a standalone AFA at a node via a throwaway MFA.
func evalAFAAt(a *AFA, n *xmltree.Node) bool {
	e := &productEval{m: &MFA{AFAs: []*AFA{a}}, memo: []map[*xmltree.Node][]bool{make(map[*xmltree.Node][]bool)}}
	return e.afaVector(0, a, n)[a.Start]
}

func TestAFACycleFixpoint(t *testing.T) {
	// (b)*/c over a chain b/b/b/c: the OR-cycle must reach the c four
	// levels down.
	d, err := xmltree.ParseString(`<a><b><b><b><c/></b></b></b></a>`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := xpath.ParsePred("(b)*/c")
	if err != nil {
		t.Fatal(err)
	}
	afa, err := BuildAFA(p)
	if err != nil {
		t.Fatal(err)
	}
	if !evalAFAAt(afa, d.Root) {
		t.Error("(b)*/c must hold at root")
	}
	b3 := d.Root.ElementChildren()[0].ElementChildren()[0].ElementChildren()[0]
	if !evalAFAAt(afa, b3) {
		t.Error("(b)*/c must hold at the innermost b (zero iterations, then c)")
	}
	c := b3.ElementChildren()[0]
	if evalAFAAt(afa, c) {
		t.Error("(b)*/c must not hold at the leaf c")
	}
}

func TestAFAFreezeRejectsNotInCycle(t *testing.T) {
	// Hand-build X = NOT(X): must be rejected.
	a := &AFA{
		States: []AFAState{{Kind: AFANot, Kids: []int{0}}},
		Start:  0,
	}
	if err := a.Freeze(); err == nil {
		t.Error("NOT on a cycle must be rejected")
	}
}

func TestAFAValidation(t *testing.T) {
	bad := []*AFA{
		{States: []AFAState{{Kind: AFAOr}}, Start: 5},                           // start out of range
		{States: []AFAState{{Kind: AFANot, Kids: []int{0, 0}}}, Start: 0},       // NOT arity
		{States: []AFAState{{Kind: AFATrans, Label: "a", Kids: nil}}, Start: 0}, // TRANS arity
		{States: []AFAState{{Kind: AFATrans, Kids: []int{0}}}, Start: 0},        // TRANS no label
		{States: []AFAState{{Kind: AFAFinal, Kids: []int{0}}}, Start: 0},        // FINAL with kids
		{States: []AFAState{{Kind: AFAOr, Kids: []int{7}}}, Start: 0},           // kid out of range
	}
	for i, a := range bad {
		if err := a.Freeze(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestMFAValidation(t *testing.T) {
	// No final state is legal (the empty query).
	m := &MFA{States: []NFAState{{Guard: -1, GuardStart: -1}}, Start: 0}
	if err := m.Validate(); err != nil {
		t.Errorf("MFA without final state must be accepted: %v", err)
	}
	// Guard out of range.
	m2 := &MFA{States: []NFAState{{Guard: 3, GuardStart: -1, Final: true}}, Start: 0}
	if err := m2.Validate(); err == nil {
		t.Error("guard out of range must be rejected")
	}
	// Guard start out of range.
	a := &AFA{States: []AFAState{{Kind: AFAFinal}}, Start: 0}
	a.MustFreeze()
	m3 := &MFA{States: []NFAState{{Guard: 0, GuardStart: 9, Final: true}}, Start: 0, AFAs: []*AFA{a}}
	if err := m3.Validate(); err == nil {
		t.Error("guard start out of range must be rejected")
	}
}

func TestEpsClosure(t *testing.T) {
	b := NewBuilder()
	s0, s1, s2, s3 := b.NewState(), b.NewState(), b.NewState(), b.NewState()
	b.AddEps(s0, s1)
	b.AddEps(s1, s2)
	b.AddEps(s2, s0) // cycle
	_ = s3
	m := b.FinishMulti(s0, []int{s2})
	got := m.EpsClosure([]int{s0})
	if len(got) != 3 {
		t.Errorf("closure = %v, want 3 states", got)
	}
}

func TestStatsBreakdown(t *testing.T) {
	m := MustCompile(xpath.MustParse("a[b]/c"))
	st := m.ComputeStats()
	if st.Size != m.Size() {
		t.Errorf("Stats.Size %d != Size() %d", st.Size, m.Size())
	}
	if st.AFACount != 1 || st.AFAStates == 0 || st.NFAStates == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func sameNodes(a, b []*xmltree.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ids(ns []*xmltree.Node) []int { return xmltree.IDsOf(ns) }

func TestAFARejectsEmptyAnd(t *testing.T) {
	a := &AFA{States: []AFAState{{Kind: AFAAnd}}, Start: 0}
	if err := a.Freeze(); err == nil {
		t.Error("empty AND must be rejected (constant-true vs prune-false inconsistency)")
	}
	// Empty OR (constant false) remains legal.
	b := &AFA{States: []AFAState{{Kind: AFAOr}}, Start: 0}
	if err := b.Freeze(); err != nil {
		t.Errorf("empty OR must stay legal: %v", err)
	}
}
