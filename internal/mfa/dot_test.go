package mfa

import (
	"fmt"
	"strings"
	"testing"

	"smoqe/internal/xpath"
)

func TestDOTOutput(t *testing.T) {
	m := MustCompile(xpath.MustParse("(a/b)*/c[d/text()='v' and not(e)]"))
	dot := m.DOT()
	for _, want := range []string{
		"digraph",
		"cluster_nfa",
		"cluster_afa0",
		"doublecircle", // final NFA state
		"λ=X0",         // guard annotation
		"diamond",      // operator state
		"doubleoctagon",
		`\"v\"`, // escaped predicate text
		"rankdir=LR",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Every state must appear.
	for i := range m.States {
		if !strings.Contains(dot, fmt.Sprintf("s%d [", i)) {
			t.Errorf("state s%d missing from DOT", i)
		}
	}
}
