package mfa

import (
	"testing"

	"smoqe/internal/xpath"
)

func TestCompiledMFAsHaveSplitProperty(t *testing.T) {
	for _, src := range []string{
		"a[b]",
		"(a/b)*/c[(d/e)*/f/text()='v']",
		"a[not(b) and (c or d)]",
		"a[b[c[(d)*/e]]]",
	} {
		m := MustCompile(xpath.MustParse(src))
		if !HasSplitProperty(m) {
			t.Errorf("compiled %q lacks the split property", src)
		}
	}
}

func TestSplitPropertyViolations(t *testing.T) {
	// AND with both operands on one cycle: X = And(Y, Z); Y = Or(X, f);
	// Z = Or(X, f).
	a := &AFA{Start: 0}
	a.States = []AFAState{
		{Kind: AFAAnd, Kids: []int{1, 2}},
		{Kind: AFAOr, Kids: []int{0, 3}},
		{Kind: AFAOr, Kids: []int{0, 3}},
		{Kind: AFAFinal},
	}
	if err := a.Freeze(); err != nil {
		t.Fatal(err)
	}
	m := &MFA{States: []NFAState{{Guard: 0, GuardStart: -1, Final: true}}, Start: 0, AFAs: []*AFA{a}}
	if HasSplitProperty(m) {
		t.Error("AND with two cyclic operands must violate the split property")
	}
	// ToXreg agrees: it cannot extract this automaton.
	if _, err := ToXreg(m, 1<<20); err == nil {
		t.Error("ToXreg should fail on a non-split automaton")
	}

	// A single-operand-on-cycle AND is fine.
	b := &AFA{Start: 0}
	b.States = []AFAState{
		{Kind: AFAAnd, Kids: []int{1, 3}},
		{Kind: AFAOr, Kids: []int{2, 3}},
		{Kind: AFATrans, Label: "x", Kids: []int{0}},
		{Kind: AFAFinal},
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	m2 := &MFA{States: []NFAState{{Guard: 0, GuardStart: -1, Final: true}}, Start: 0, AFAs: []*AFA{b}}
	if !HasSplitProperty(m2) {
		t.Error("single cyclic AND operand satisfies the split property")
	}
	if _, err := ToXreg(m2, 1<<20); err != nil {
		t.Errorf("ToXreg should handle the split automaton: %v", err)
	}
}
