package mfa

import (
	"testing"

	"smoqe/internal/refeval"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

func TestSimplifyPreservesSemantics(t *testing.T) {
	doc, err := xmltree.ParseString(`<hospital>
  <patient>
    <parent><patient><record><diagnosis>heart disease</diagnosis></record></patient></parent>
    <record><diagnosis>flu</diagnosis></record>
  </patient>
  <patient><record><diagnosis>heart disease</diagnosis></record></patient>
</hospital>`)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		".",
		"patient",
		"patient/record/diagnosis",
		"**",
		"(patient/parent)*/patient[(parent/patient)*/record/diagnosis/text()='heart disease']",
		"patient[not(parent) and record]",
		"patient[record/diagnosis/text()='flu' or parent]",
		"(patient | patient/parent/patient)[record]",
		"nosuchlabel/nothing",
		"patient[nosuch]",
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		m := MustCompile(q)
		s := Simplify(m)
		if err := s.Validate(); err != nil {
			t.Fatalf("query %q: simplified MFA invalid: %v\n%s", src, err, s)
		}
		if s.Size() > m.Size() {
			t.Errorf("query %q: simplification grew the MFA: %d -> %d", src, m.Size(), s.Size())
		}
		want := refeval.Eval(q, doc.Root)
		got := Eval(s, doc.Root)
		if len(got) != len(want) {
			t.Fatalf("query %q: simplified MFA: got %d nodes, want %d\nbefore:\n%s\nafter:\n%s",
				src, len(got), len(want), m, s)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("query %q: node %d differs", src, i)
			}
		}
	}
}

func TestSimplifyShrinksEpsilonChains(t *testing.T) {
	// Unions and stars create ε-chains; simplification must remove a good
	// share of the states.
	q := xpath.MustParse("((a | b)/(c | d))*/e[f | g]")
	m := MustCompile(q)
	s := Simplify(m)
	if s.NumStates() >= m.NumStates() {
		t.Errorf("states: %d -> %d; expected a reduction", m.NumStates(), s.NumStates())
	}
	// Idempotence up to a fixpoint: simplifying twice changes nothing more.
	s2 := Simplify(s)
	if s2.Size() != s.Size() {
		t.Errorf("simplify not idempotent: %d -> %d", s.Size(), s2.Size())
	}
}

func TestSimplifyEmptyQuery(t *testing.T) {
	// A query that can never match anything collapses to a single state.
	m := MustCompile(xpath.MustParse("a[nosuch/text()='x']/b"))
	// Manually orphan the finals to force the empty case: use a query
	// whose NFA final is unreachable... instead build directly:
	b := NewBuilder()
	s0 := b.NewState()
	s1 := b.NewState() // final but unreachable
	em := b.FinishMulti(s0, []int{s1})
	se := Simplify(em)
	if se.NumStates() != 1 {
		t.Errorf("empty automaton should shrink to 1 state, has %d", se.NumStates())
	}
	doc, _ := xmltree.ParseString("<a><b/></a>")
	if got := Eval(se, doc.Root); len(got) != 0 {
		t.Errorf("empty automaton returned %d nodes", len(got))
	}
	_ = m
}

func TestSimplifyDropsUnusedAFAs(t *testing.T) {
	// A guard on an unproductive branch disappears together with the
	// branch.
	b := NewBuilder()
	s0 := b.NewState()
	fin := b.NewState()
	b.AddTrans(s0, "a", fin)
	dead := b.NewState() // guarded, but no final reachable from it
	b.AddEps(s0, dead)
	afa, err := BuildAFA(xpath.MustParse("x[y]").(*xpath.Filter).Cond)
	if err != nil {
		t.Fatal(err)
	}
	b.SetGuard(dead, b.AddAFA(afa))
	m := b.FinishMulti(s0, []int{fin})
	s := Simplify(m)
	if len(s.AFAs) != 0 {
		t.Errorf("unused AFA survived simplification: %d AFAs", len(s.AFAs))
	}
	doc, _ := xmltree.ParseString("<r><a/></r>")
	if got := Eval(s, doc.Root); len(got) != 1 {
		t.Errorf("simplified automaton lost the answer: %d", len(got))
	}
}

func TestSimplifySharedGuardEntries(t *testing.T) {
	// Two states guarded by the same AFA at different entry states — the
	// shape the view rewriting produces; both entries must stay mapped.
	ab := NewAFABuilder()
	fx := ab.NewFinal(Pred{})
	tx := ab.NewTrans("x", fx)
	ty := ab.NewTrans("y", fx)
	or := ab.NewOr(tx, ty)
	a, err := ab.Finish(or)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	s0 := b.NewState()
	f1 := b.NewState()
	f2 := b.NewState()
	b.AddTrans(s0, "p", f1)
	b.AddTrans(s0, "q", f2)
	g := b.AddAFA(a)
	b.SetGuardAt(f1, g, tx) // requires an x child
	b.SetGuardAt(f2, g, ty) // requires a y child
	m := b.FinishMulti(s0, []int{f1, f2})
	s := Simplify(m)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<r><p><x/></p><p><y/></p><q><y/></q></r>`)
	got := Eval(s, doc.Root)
	want := Eval(m, doc.Root)
	if len(got) != len(want) {
		t.Fatalf("shared-entry simplification broke: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("node %d differs", i)
		}
	}
	if len(want) != 2 { // first p (has x) and q (has y)
		t.Errorf("scenario selects %d nodes, want 2", len(want))
	}
}

func TestSimplifyDeterministic(t *testing.T) {
	// Simplify's output (and therefore serialized rewritten automata)
	// must be byte-identical across runs despite Go's map iteration
	// randomization.
	q := xpath.MustParse("a[b][c]/d[e][f]/(g[h])*")
	ref := Simplify(MustCompile(q)).String()
	for i := 0; i < 10; i++ {
		if got := Simplify(MustCompile(q)).String(); got != ref {
			t.Fatalf("run %d produced a different automaton:\n%s\nvs\n%s", i, got, ref)
		}
	}
}
