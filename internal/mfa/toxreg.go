package mfa

// Extraction of explicit Xreg queries from MFAs — the converse direction
// of Theorem 4.1 ("for any MFA with the split property there exists an
// equivalent Xreg query"). The construction is classical state elimination
// (GNFA) on the selecting NFA with Xreg paths as edge labels, preceded by
// Gaussian elimination with Arden's lemma on each guard AFA to turn it
// into an Xreg filter.
//
// The output can be exponentially larger than the MFA — that is exactly
// Corollary 3.3's lower bound and the reason SMOQE evaluates MFAs directly
// instead of extracting queries. Extraction therefore takes a size budget
// and fails cleanly when the query under construction exceeds it; the
// benchfig -blowup experiment uses this to exhibit the blow-up that the
// MFA representation avoids.

import (
	"fmt"
	"sort"

	"smoqe/internal/xpath"
)

// ErrBudget is returned (wrapped) when the extracted query exceeds the
// size budget.
var ErrBudget = fmt.Errorf("mfa: extracted query exceeds the size budget (Corollary 3.3 blow-up)")

// ToXreg extracts an Xreg query equivalent to the MFA. budget bounds the
// AST size of intermediate results (0 means a permissive default); the
// extraction fails with ErrBudget beyond it.
func ToXreg(m *MFA, budget int) (xpath.Path, error) {
	if budget <= 0 {
		budget = 1 << 20
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	x := &extractor{m: m, budget: budget, preds: make(map[[2]int]xpath.Pred)}
	return x.selectingPath()
}

type extractor struct {
	m      *MFA
	budget int
	// preds memoizes extracted guard predicates per (afa, entry state).
	preds map[[2]int]xpath.Pred
}

func (x *extractor) check(size int) error {
	if size > x.budget {
		return ErrBudget
	}
	return nil
}

// ---------------------------------------------------------------------
// Selecting NFA → Xreg path via GNFA state elimination.

// gnfa edges hold Xreg paths; nil means no edge.
type gnfa struct {
	n     int // states 0..n-1 are NFA states; n is the unique final
	edges map[[2]int]xpath.Path
}

func (g *gnfa) get(i, j int) xpath.Path { return g.edges[[2]int{i, j}] }

func (g *gnfa) union(i, j int, p xpath.Path) {
	if old := g.get(i, j); old != nil {
		p = &xpath.Union{Left: old, Right: p}
	}
	g.edges[[2]int{i, j}] = p
}

func (x *extractor) selectingPath() (xpath.Path, error) {
	m := x.m
	n := len(m.States)
	g := &gnfa{n: n, edges: make(map[[2]int]xpath.Path)}

	// guardSuffix returns the path step that enforces a state's guard at
	// the node where the run occupies it (ε-filter), or nil.
	guardSuffix := func(s int) (xpath.Path, error) {
		st := &m.States[s]
		if st.Guard < 0 {
			return nil, nil
		}
		p, err := x.predOf(st.Guard, m.GuardEntry(s))
		if err != nil {
			return nil, err
		}
		return &xpath.Filter{Path: xpath.Empty{}, Cond: p}, nil
	}

	for s := 0; s < n; s++ {
		st := &m.States[s]
		for _, t := range st.Eps {
			suffix, err := guardSuffix(t)
			if err != nil {
				return nil, err
			}
			var p xpath.Path = xpath.Empty{}
			if suffix != nil {
				p = suffix
			}
			g.union(s, t, p)
		}
		for _, e := range st.Trans {
			var step xpath.Path
			if e.Wild {
				step = xpath.Wildcard{}
			} else {
				step = &xpath.Label{Name: e.Label}
			}
			suffix, err := guardSuffix(e.To)
			if err != nil {
				return nil, err
			}
			if suffix != nil {
				step = &xpath.Seq{Left: step, Right: suffix}
			}
			g.union(s, e.To, step)
		}
		if st.Final {
			g.union(s, n, xpath.Empty{})
		}
	}

	// The start state's own guard applies at the context node.
	startPrefix, err := guardSuffix(m.Start)
	if err != nil {
		return nil, err
	}

	// Eliminate every state except start and the artificial final, in a
	// deterministic order.
	for s := 0; s < n; s++ {
		if s == m.Start {
			continue
		}
		if err := x.eliminate(g, s); err != nil {
			return nil, err
		}
	}

	// Remaining edges: start→final, possibly via a start self-loop.
	direct := g.get(m.Start, g.n)
	if direct == nil {
		// The automaton accepts nothing: a query with an empty result on
		// every document, e.g. a child step that matches no label. Use a
		// filter that never holds.
		return &xpath.Filter{Path: xpath.Empty{}, Cond: &xpath.Not{Sub: &xpath.Exists{Path: xpath.Empty{}}}}, nil
	}
	if loop := g.get(m.Start, m.Start); loop != nil {
		direct = &xpath.Seq{Left: &xpath.Star{Sub: loop}, Right: direct}
	}
	if startPrefix != nil {
		direct = &xpath.Seq{Left: startPrefix, Right: direct}
	}
	if err := x.check(direct.Size()); err != nil {
		return nil, err
	}
	return simplifyPath(direct), nil
}

// eliminate removes state s from the GNFA, rerouting paths through it.
func (x *extractor) eliminate(g *gnfa, s int) error {
	loop := g.get(s, s)
	delete(g.edges, [2]int{s, s})
	var ins, outs [][2]int
	for key := range g.edges {
		if key[1] == s && key[0] != s {
			ins = append(ins, key)
		}
		if key[0] == s && key[1] != s {
			outs = append(outs, key)
		}
	}
	sort.Slice(ins, func(a, b int) bool { return ins[a][0] < ins[b][0] })
	sort.Slice(outs, func(a, b int) bool { return outs[a][1] < outs[b][1] })
	for _, in := range ins {
		for _, out := range outs {
			p := g.edges[in]
			if loop != nil {
				p = &xpath.Seq{Left: p, Right: &xpath.Star{Sub: loop}}
			}
			p = &xpath.Seq{Left: p, Right: g.edges[out]}
			if err := x.check(p.Size()); err != nil {
				return err
			}
			g.union(in[0], out[1], p)
			if err := x.check(g.get(in[0], out[1]).Size()); err != nil {
				return err
			}
		}
	}
	for _, in := range ins {
		delete(g.edges, in)
	}
	for _, out := range outs {
		delete(g.edges, out)
	}
	return nil
}

// ---------------------------------------------------------------------
// AFA → Xreg predicate via Gaussian elimination with Arden's lemma.
//
// Each AFA state denotes a boolean-valued function of a node. States form
// equations X_i = ⋁_j π_ij/X_j ∨ C_i, where π_ij is an Xreg path prefix
// (a child step for TRANS states, a guarded ε for AND states with one
// operand on a cycle) and C_i a constant predicate. Cycles never pass
// through NOT (guaranteed by Freeze plus construction), so the system is
// linear and Arden's lemma (X = A/X ∨ B ⇒ X = A*/B) solves it.

// term is one disjunct of a variable's equation.
type term struct {
	path xpath.Path // prefix; nil means ε with no filter
	via  int        // SCC-internal variable index, or -1 for a constant
	c    xpath.Pred // the constant (when via == -1)
}

func (x *extractor) predOf(afaIdx, entry int) (xpath.Pred, error) {
	if p, ok := x.preds[[2]int{afaIdx, entry}]; ok {
		return p, nil
	}
	a := x.m.AFAs[afaIdx]
	solver := &afaSolver{x: x, a: a, memo: make(map[int]xpath.Pred)}
	p, err := solver.solve(entry)
	if err != nil {
		return nil, err
	}
	x.preds[[2]int{afaIdx, entry}] = p
	return p, nil
}

type afaSolver struct {
	x    *extractor
	a    *AFA
	memo map[int]xpath.Pred
	// scc machinery over the FULL edge graph (Kids incl. TRANS).
	sccID   []int
	sccList [][]int
}

func (sv *afaSolver) ensureSCCs() {
	if sv.sccID != nil {
		return
	}
	n := len(sv.a.States)
	sv.sccID = make([]int, n)
	for i := range sv.sccID {
		sv.sccID[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sv.a.States[v].Kids {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			id := len(sv.sccList)
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sv.sccID[w] = id
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sv.sccList = append(sv.sccList, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
}

// solve returns the predicate denoted by AFA state s.
func (sv *afaSolver) solve(s int) (xpath.Pred, error) {
	if p, ok := sv.memo[s]; ok {
		return p, nil
	}
	sv.ensureSCCs()
	comp := sv.sccList[sv.sccID[s]]
	cyclic := len(comp) > 1
	if !cyclic {
		for _, k := range sv.a.States[s].Kids {
			if k == s {
				cyclic = true
			}
		}
	}
	if !cyclic {
		p, err := sv.solveAcyclic(s)
		if err != nil {
			return nil, err
		}
		sv.memo[s] = p
		return p, nil
	}
	if err := sv.solveSCC(comp); err != nil {
		return nil, err
	}
	return sv.memo[s], nil
}

// solveAcyclic handles a state whose children are all in lower SCCs.
func (sv *afaSolver) solveAcyclic(s int) (xpath.Pred, error) {
	st := &sv.a.States[s]
	switch st.Kind {
	case AFAFinal:
		return predConst(st.Pred), nil
	case AFATrans:
		kid, err := sv.solve(st.Kids[0])
		if err != nil {
			return nil, err
		}
		return &xpath.Exists{Path: &xpath.Filter{Path: stepOf(st), Cond: kid}}, nil
	case AFANot:
		kid, err := sv.solve(st.Kids[0])
		if err != nil {
			return nil, err
		}
		return &xpath.Not{Sub: kid}, nil
	case AFAAnd:
		return sv.fold(st.Kids, func(l, r xpath.Pred) xpath.Pred { return &xpath.And{Left: l, Right: r} }, true)
	case AFAOr:
		return sv.fold(st.Kids, func(l, r xpath.Pred) xpath.Pred { return &xpath.Or{Left: l, Right: r} }, false)
	default:
		return nil, fmt.Errorf("mfa: unknown AFA state kind")
	}
}

func (sv *afaSolver) fold(kids []int, combine func(l, r xpath.Pred) xpath.Pred, neutral bool) (xpath.Pred, error) {
	if len(kids) == 0 {
		if neutral { // AND of nothing
			return trueConst(), nil
		}
		return falseConst(), nil // OR of nothing
	}
	out, err := sv.solve(kids[0])
	if err != nil {
		return nil, err
	}
	for _, k := range kids[1:] {
		p, err := sv.solve(k)
		if err != nil {
			return nil, err
		}
		out = combine(out, p)
		if err := sv.x.check(out.Size()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// solveSCC sets memo for every state of a cyclic component by Gaussian
// elimination with Arden's lemma.
func (sv *afaSolver) solveSCC(comp []int) error {
	pos := make(map[int]int, len(comp))
	for i, s := range comp {
		pos[s] = i
	}
	// eqs[i] = list of terms for comp[i].
	eqs := make([][]term, len(comp))
	for i, s := range comp {
		st := &sv.a.States[s]
		switch st.Kind {
		case AFAOr:
			for _, k := range st.Kids {
				if j, in := pos[k]; in {
					eqs[i] = append(eqs[i], term{path: nil, via: j})
					continue
				}
				c, err := sv.solve(k)
				if err != nil {
					return err
				}
				eqs[i] = append(eqs[i], term{via: -1, c: c})
			}
		case AFAAnd:
			// At most one operand may lie on the cycle (the Freeze
			// invariant plus the compilers' structure guarantee it); the
			// remaining operands become an ε-filter prefix.
			inIdx := -1
			var guards []xpath.Pred
			for _, k := range st.Kids {
				if j, in := pos[k]; in {
					if inIdx >= 0 {
						return fmt.Errorf("mfa: AND with two operands on a cycle is not extractable")
					}
					inIdx = j
					continue
				}
				g, err := sv.solve(k)
				if err != nil {
					return err
				}
				guards = append(guards, g)
			}
			if inIdx < 0 {
				return fmt.Errorf("mfa: internal: cyclic AND without cyclic operand")
			}
			var guard xpath.Pred
			for _, g := range guards {
				if guard == nil {
					guard = g
				} else {
					guard = &xpath.And{Left: guard, Right: g}
				}
			}
			var prefix xpath.Path
			if guard != nil {
				prefix = &xpath.Filter{Path: xpath.Empty{}, Cond: guard}
			}
			eqs[i] = append(eqs[i], term{path: prefix, via: inIdx})
		case AFATrans:
			k := st.Kids[0]
			if j, in := pos[k]; in {
				eqs[i] = append(eqs[i], term{path: stepOf(st), via: j})
			} else {
				c, err := sv.solve(k)
				if err != nil {
					return err
				}
				eqs[i] = append(eqs[i], term{via: -1, c: &xpath.Exists{Path: &xpath.Filter{Path: stepOf(st), Cond: c}}})
			}
		case AFANot:
			return fmt.Errorf("mfa: NOT on a cycle is not extractable")
		case AFAFinal:
			return fmt.Errorf("mfa: internal: FINAL cannot lie on a cycle")
		}
	}

	// Gaussian elimination: repeatedly resolve the last variable.
	for v := len(comp) - 1; v >= 0; v-- {
		// Arden on variable v: X_v = A/X_v ∨ rest ⇒ X_v = A*/rest.
		var selfPaths xpath.Path
		var rest []term
		for _, tm := range eqs[v] {
			if tm.via == v {
				p := tm.path
				if p == nil {
					// ε self-loop contributes nothing (X = X ∨ …).
					continue
				}
				if selfPaths == nil {
					selfPaths = p
				} else {
					selfPaths = &xpath.Union{Left: selfPaths, Right: p}
				}
				continue
			}
			rest = append(rest, tm)
		}
		if selfPaths != nil {
			star := &xpath.Star{Sub: selfPaths}
			for i := range rest {
				rest[i] = prefixTerm(star, rest[i])
			}
		}
		eqs[v] = rest
		// Substitute X_v into equations of lower variables.
		for u := 0; u < v; u++ {
			var out []term
			for _, tm := range eqs[u] {
				if tm.via != v {
					out = append(out, tm)
					continue
				}
				for _, sub := range eqs[v] {
					nt := prefixTerm(tm.path, sub)
					if err := sv.x.check(termSize(nt)); err != nil {
						return err
					}
					out = append(out, nt)
				}
			}
			eqs[u] = out
		}
	}

	// Back-substitute: all equations are now constant-only for variable 0;
	// resolve upward.
	resolved := make([]xpath.Pred, len(comp))
	for v := 0; v < len(comp); v++ {
		var p xpath.Pred
		for _, tm := range eqs[v] {
			var c xpath.Pred
			if tm.via >= 0 {
				if resolved[tm.via] == nil {
					return fmt.Errorf("mfa: internal: unresolved variable order in SCC")
				}
				c = applyPrefix(tm.path, resolved[tm.via])
			} else {
				c = applyPrefix(tm.path, tm.c)
			}
			if p == nil {
				p = c
			} else {
				p = &xpath.Or{Left: p, Right: c}
			}
			if err := sv.x.check(p.Size()); err != nil {
				return err
			}
		}
		if p == nil {
			p = falseConst()
		}
		resolved[v] = p
		sv.memo[comp[v]] = p
	}
	return nil
}

// prefixTerm prepends path p to a term's prefix.
func prefixTerm(p xpath.Path, tm term) term {
	if p == nil {
		return tm
	}
	if tm.path == nil {
		return term{path: p, via: tm.via, c: tm.c}
	}
	return term{path: &xpath.Seq{Left: p, Right: tm.path}, via: tm.via, c: tm.c}
}

// termSize is the AST size of a term for budget checks.
func termSize(tm term) int {
	n := 0
	if tm.path != nil {
		n += tm.path.Size()
	}
	if tm.c != nil {
		n += tm.c.Size()
	}
	return n
}

// applyPrefix turns "∃ node via p where c holds" into a predicate; a nil
// path means c itself.
func applyPrefix(p xpath.Path, c xpath.Pred) xpath.Pred {
	if p == nil {
		return c
	}
	return &xpath.Exists{Path: &xpath.Filter{Path: p, Cond: c}}
}

func stepOf(st *AFAState) xpath.Path {
	if st.Wild {
		return xpath.Wildcard{}
	}
	return &xpath.Label{Name: st.Label}
}

func predConst(p Pred) xpath.Pred {
	switch p.Kind {
	case PredText:
		return &xpath.TextEq{Path: xpath.Empty{}, Value: p.Text}
	case PredPos:
		return &xpath.PosEq{Path: xpath.Empty{}, K: p.K}
	default:
		return trueConst()
	}
}

// trueConst is a predicate that always holds ('.' always selects a node).
func trueConst() xpath.Pred { return &xpath.Exists{Path: xpath.Empty{}} }

// falseConst is a predicate that never holds.
func falseConst() xpath.Pred { return &xpath.Not{Sub: trueConst()} }

// simplifyPath applies cheap local algebraic simplifications to the
// extracted query (ε is a unit for '/', single-branch unions stay).
func simplifyPath(p xpath.Path) xpath.Path {
	switch t := p.(type) {
	case *xpath.Seq:
		l := simplifyPath(t.Left)
		r := simplifyPath(t.Right)
		if _, ok := l.(xpath.Empty); ok {
			return r
		}
		if _, ok := r.(xpath.Empty); ok {
			return l
		}
		return &xpath.Seq{Left: l, Right: r}
	case *xpath.Union:
		l := simplifyPath(t.Left)
		r := simplifyPath(t.Right)
		if xpath.Equal(l, r) {
			return l
		}
		return &xpath.Union{Left: l, Right: r}
	case *xpath.Star:
		sub := simplifyPath(t.Sub)
		if _, ok := sub.(xpath.Empty); ok {
			return xpath.Empty{}
		}
		return &xpath.Star{Sub: sub}
	case *xpath.Filter:
		return &xpath.Filter{Path: simplifyPath(t.Path), Cond: t.Cond}
	default:
		return p
	}
}
