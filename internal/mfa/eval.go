package mfa

import (
	"smoqe/internal/xmltree"
)

// Eval computes ctx[[M]] — the answer set of the MFA at context node ctx —
// by explicit breadth-first search over the product of the tree and the
// selecting NFA, evaluating guard AFAs with memoization. It materializes
// the full truth vector of each needed AFA at each visited node, i.e. it is
// the straightforward "conceptual evaluation" of §4 (Fig. 4), not the
// optimized single-pass HyPE of §6. It serves as the correctness oracle
// for HyPE and as a second reference implementation alongside refeval.
func Eval(m *MFA, ctx *xmltree.Node) []*xmltree.Node {
	e := &productEval{
		m:    m,
		memo: make([]map[*xmltree.Node][]bool, len(m.AFAs)),
	}
	for i := range e.memo {
		e.memo[i] = make(map[*xmltree.Node][]bool)
	}

	type cfg struct {
		n *xmltree.Node
		s int
	}
	seen := make(map[cfg]bool)
	var queue []cfg
	var answers []*xmltree.Node

	push := func(n *xmltree.Node, s int) {
		if !e.guardOK(n, s) {
			return
		}
		c := cfg{n, s}
		if seen[c] {
			return
		}
		seen[c] = true
		queue = append(queue, c)
		if m.States[s].Final {
			answers = append(answers, n)
		}
	}

	push(ctx, m.Start)
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		st := &m.States[c.s]
		for _, t := range st.Eps {
			push(c.n, t)
		}
		if len(st.Trans) == 0 {
			continue
		}
		for _, child := range c.n.Children {
			if child.Kind != xmltree.Element {
				continue
			}
			for _, tr := range st.Trans {
				if tr.Matches(child.Label) {
					push(child, tr.To)
				}
			}
		}
	}
	return xmltree.SortNodes(answers)
}

type productEval struct {
	m    *MFA
	memo []map[*xmltree.Node][]bool // per AFA, per node: full truth vector
}

func (e *productEval) guardOK(n *xmltree.Node, s int) bool {
	g := e.m.States[s].Guard
	if g < 0 {
		return true
	}
	afa := e.m.AFAs[g]
	return e.afaVector(g, afa, n)[e.m.GuardEntry(s)]
}

// afaVector returns the truth vector of all states of AFA g at node n,
// computing child vectors recursively (bottom-up over the subtree).
func (e *productEval) afaVector(g int, a *AFA, n *xmltree.Node) []bool {
	if v, ok := e.memo[g][n]; ok {
		return v
	}
	transVals := make([]bool, len(a.States))
	// For each TRANS state, disjoin the target's value over matching
	// element children.
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		var childVec []bool
		for s := range a.States {
			st := &a.States[s]
			if st.Kind != AFATrans || transVals[s] {
				continue
			}
			if !st.Wild && st.Label != c.Label {
				continue
			}
			if childVec == nil {
				childVec = e.afaVector(g, a, c)
			}
			if childVec[st.Kids[0]] {
				transVals[s] = true
			}
		}
	}
	v := a.EvalAt(n, transVals)
	e.memo[g][n] = v
	return v
}
