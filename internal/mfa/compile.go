package mfa

import (
	"fmt"

	"smoqe/internal/xpath"
)

// Compile translates an Xreg query into an equivalent MFA (the practical
// direction of Theorem 4.1). The construction is Thompson-style for the
// selecting NFA; every filter becomes one AFA (nested filters are flattened
// into the same AFA, per Example 5.2) and guards the fresh state appended
// after the filtered sub-path.
func Compile(q xpath.Path) (*MFA, error) {
	b := NewBuilder()
	frag, err := b.CompilePath(q)
	if err != nil {
		return nil, err
	}
	m := b.Finish(frag)
	m.Name = "MFA(" + q.String() + ")"
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustCompile is Compile but panics on error.
func MustCompile(q xpath.Path) *MFA {
	m, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return m
}

// Frag is an NFA fragment with a unique entry and exit state. Fragments
// compose by ε-transitions.
type Frag struct {
	Start, End int
}

// Builder incrementally constructs an MFA. It is exported (within the
// module) so that the view-rewriting algorithm can splice compiled
// fragments of the view definition into the product automaton.
type Builder struct {
	m *MFA
}

// NewBuilder returns an empty MFA builder.
func NewBuilder() *Builder {
	return &Builder{m: &MFA{Start: -1}}
}

// NewState adds a fresh unguarded non-final state and returns its index.
func (b *Builder) NewState() int {
	b.m.States = append(b.m.States, NFAState{Guard: -1, GuardStart: -1})
	return len(b.m.States) - 1
}

// AddEps adds an ε-transition.
func (b *Builder) AddEps(from, to int) {
	b.m.States[from].Eps = append(b.m.States[from].Eps, to)
}

// AddTrans adds a child transition on the given label.
func (b *Builder) AddTrans(from int, label string, to int) {
	b.m.States[from].Trans = append(b.m.States[from].Trans, Edge{Label: label, To: to})
}

// AddWildTrans adds a child transition matching any element label.
func (b *Builder) AddWildTrans(from, to int) {
	b.m.States[from].Trans = append(b.m.States[from].Trans, Edge{Wild: true, To: to})
}

// SetGuard annotates a state with an AFA (the λ mapping of §4). Each state
// carries at most one guard; guarding an already-guarded state is a bug in
// the caller and panics.
func (b *Builder) SetGuard(state, afa int) {
	if b.m.States[state].Guard >= 0 {
		panic(fmt.Sprintf("mfa: state %d already guarded", state))
	}
	b.m.States[state].Guard = afa
}

// SetGuardAt is SetGuard with an explicit AFA entry state; the rewriting
// algorithm uses it to share one product AFA among several guarded states.
func (b *Builder) SetGuardAt(state, afa, start int) {
	b.SetGuard(state, afa)
	b.m.States[state].GuardStart = start
}

// SetTag sets a state's batch-result tag (see Merge and EvalTagged).
func (b *Builder) SetTag(state, tag int) {
	b.m.States[state].Tag = tag
}

// AddAFA registers a frozen AFA and returns its index (the name X_i).
func (b *Builder) AddAFA(a *AFA) int {
	b.m.AFAs = append(b.m.AFAs, a)
	return len(b.m.AFAs) - 1
}

// ReserveAFA reserves an AFA slot to be filled later with SetReservedAFA;
// it lets callers hand out guard indices before the AFA is complete.
func (b *Builder) ReserveAFA() int {
	b.m.AFAs = append(b.m.AFAs, nil)
	return len(b.m.AFAs) - 1
}

// SetReservedAFA fills a slot reserved with ReserveAFA.
func (b *Builder) SetReservedAFA(idx int, a *AFA) { b.m.AFAs[idx] = a }

// CompilePath compiles an Xreg path into a fresh fragment.
func (b *Builder) CompilePath(q xpath.Path) (Frag, error) {
	switch t := q.(type) {
	case xpath.Empty:
		s, e := b.NewState(), b.NewState()
		b.AddEps(s, e)
		return Frag{s, e}, nil
	case *xpath.Label:
		s, e := b.NewState(), b.NewState()
		b.AddTrans(s, t.Name, e)
		return Frag{s, e}, nil
	case xpath.Wildcard:
		s, e := b.NewState(), b.NewState()
		b.AddWildTrans(s, e)
		return Frag{s, e}, nil
	case *xpath.Seq:
		l, err := b.CompilePath(t.Left)
		if err != nil {
			return Frag{}, err
		}
		r, err := b.CompilePath(t.Right)
		if err != nil {
			return Frag{}, err
		}
		b.AddEps(l.End, r.Start)
		return Frag{l.Start, r.End}, nil
	case *xpath.Union:
		l, err := b.CompilePath(t.Left)
		if err != nil {
			return Frag{}, err
		}
		r, err := b.CompilePath(t.Right)
		if err != nil {
			return Frag{}, err
		}
		s, e := b.NewState(), b.NewState()
		b.AddEps(s, l.Start)
		b.AddEps(s, r.Start)
		b.AddEps(l.End, e)
		b.AddEps(r.End, e)
		return Frag{s, e}, nil
	case *xpath.Star:
		sub, err := b.CompilePath(t.Sub)
		if err != nil {
			return Frag{}, err
		}
		// A single hub state is both entry and exit: ε to the body and ε
		// back, giving zero-or-more iterations.
		hub := b.NewState()
		b.AddEps(hub, sub.Start)
		b.AddEps(sub.End, hub)
		return Frag{hub, hub}, nil
	case *xpath.Filter:
		sub, err := b.CompilePath(t.Path)
		if err != nil {
			return Frag{}, err
		}
		afa, err := BuildAFA(t.Cond)
		if err != nil {
			return Frag{}, err
		}
		// A fresh guarded state after the sub-path keeps the "at most
		// one guard per state" invariant even for stacked filters.
		f := b.NewState()
		b.AddEps(sub.End, f)
		b.SetGuard(f, b.AddAFA(afa))
		return Frag{sub.Start, f}, nil
	default:
		return Frag{}, fmt.Errorf("mfa: unknown path node %T", q)
	}
}

// Finish marks the fragment's end state final, sets the start state, and
// returns the built MFA. The builder must not be reused afterwards.
func (b *Builder) Finish(f Frag) *MFA {
	b.m.Start = f.Start
	b.m.States[f.End].Final = true
	return b.m
}

// FinishMulti is Finish for automata with several final states (used by the
// rewriting algorithm, where each product copy contributes a final state).
func (b *Builder) FinishMulti(start int, finals []int) *MFA {
	b.m.Start = start
	for _, f := range finals {
		b.m.States[f].Final = true
	}
	return b.m
}

// BuildAFA compiles an Xreg filter into a single AFA (nested filters are
// flattened; Kleene stars become OR-cycles resolved by least fixpoint).
func BuildAFA(p xpath.Pred) (*AFA, error) {
	ab := NewAFABuilder()
	start, err := ab.CompilePred(p)
	if err != nil {
		return nil, err
	}
	return ab.Finish(start)
}

// AFABuilder incrementally constructs an AFA; exported for the rewriting
// algorithm, which splices view-definition fragments into filter automata.
type AFABuilder struct {
	a *AFA
}

// NewAFABuilder returns an empty AFA builder.
func NewAFABuilder() *AFABuilder {
	return &AFABuilder{a: &AFA{Start: -1}}
}

func (b *AFABuilder) add(s AFAState) int {
	b.a.States = append(b.a.States, s)
	return len(b.a.States) - 1
}

// NewOr adds an OR state over the given same-node children.
func (b *AFABuilder) NewOr(kids ...int) int {
	return b.add(AFAState{Kind: AFAOr, Kids: kids})
}

// NewAnd adds an AND state over the given same-node children.
func (b *AFABuilder) NewAnd(kids ...int) int {
	return b.add(AFAState{Kind: AFAAnd, Kids: kids})
}

// NewNot adds a NOT state over one same-node child.
func (b *AFABuilder) NewNot(kid int) int {
	return b.add(AFAState{Kind: AFANot, Kids: []int{kid}})
}

// NewTrans adds a transition state: step to a child labeled label, then
// require target.
func (b *AFABuilder) NewTrans(label string, target int) int {
	return b.add(AFAState{Kind: AFATrans, Label: label, Kids: []int{target}})
}

// NewWildTrans adds a transition state matching any element child.
func (b *AFABuilder) NewWildTrans(target int) int {
	return b.add(AFAState{Kind: AFATrans, Wild: true, Kids: []int{target}})
}

// NewFinal adds a final state with the given predicate.
func (b *AFABuilder) NewFinal(pred Pred) int {
	return b.add(AFAState{Kind: AFAFinal, Pred: pred})
}

// SetKids replaces the children of an operator state; used to tie the knot
// for Kleene-star cycles.
func (b *AFABuilder) SetKids(state int, kids ...int) {
	b.a.States[state].Kids = kids
}

// AddKid appends one child to an operator state.
func (b *AFABuilder) AddKid(state, kid int) {
	b.a.States[state].Kids = append(b.a.States[state].Kids, kid)
}

// NewPlaceholder adds an operator state whose children are filled in later
// with SetKids/AddKid; the product construction of the rewriting algorithm
// allocates states for (filter state, view type) pairs before wiring them.
func (b *AFABuilder) NewPlaceholder(kind AFAKind) int {
	return b.add(AFAState{Kind: kind})
}

// CompilePred compiles a filter and returns its entry state.
func (b *AFABuilder) CompilePred(p xpath.Pred) (int, error) {
	switch t := p.(type) {
	case *xpath.Exists:
		return b.CompilePathTo(t.Path, b.NewFinal(Pred{}))
	case *xpath.TextEq:
		return b.CompilePathTo(t.Path, b.NewFinal(Pred{Kind: PredText, Text: t.Value}))
	case *xpath.PosEq:
		return b.CompilePathTo(t.Path, b.NewFinal(Pred{Kind: PredPos, K: t.K}))
	case *xpath.Not:
		kid, err := b.CompilePred(t.Sub)
		if err != nil {
			return 0, err
		}
		return b.NewNot(kid), nil
	case *xpath.And:
		l, err := b.CompilePred(t.Left)
		if err != nil {
			return 0, err
		}
		r, err := b.CompilePred(t.Right)
		if err != nil {
			return 0, err
		}
		return b.NewAnd(l, r), nil
	case *xpath.Or:
		l, err := b.CompilePred(t.Left)
		if err != nil {
			return 0, err
		}
		r, err := b.CompilePred(t.Right)
		if err != nil {
			return 0, err
		}
		return b.NewOr(l, r), nil
	default:
		return 0, fmt.Errorf("mfa: unknown predicate node %T", p)
	}
}

// CompilePathTo compiles path q as a condition continuation: the returned
// state is true at node n iff some node m reachable from n via q makes
// state cont true at m. It is the AFA analogue of the NFA fragment
// construction, with nondeterminism turned into OR states.
func (b *AFABuilder) CompilePathTo(q xpath.Path, cont int) (int, error) {
	switch t := q.(type) {
	case xpath.Empty:
		return cont, nil
	case *xpath.Label:
		return b.NewTrans(t.Name, cont), nil
	case xpath.Wildcard:
		return b.NewWildTrans(cont), nil
	case *xpath.Seq:
		rest, err := b.CompilePathTo(t.Right, cont)
		if err != nil {
			return 0, err
		}
		return b.CompilePathTo(t.Left, rest)
	case *xpath.Union:
		l, err := b.CompilePathTo(t.Left, cont)
		if err != nil {
			return 0, err
		}
		r, err := b.CompilePathTo(t.Right, cont)
		if err != nil {
			return 0, err
		}
		return b.NewOr(l, r), nil
	case *xpath.Star:
		// x = cont ∨ ⟨Sub⟩x — an OR-cycle resolved by least fixpoint.
		x := b.NewOr()
		inner, err := b.CompilePathTo(t.Sub, x)
		if err != nil {
			return 0, err
		}
		b.SetKids(x, cont, inner)
		return x, nil
	case *xpath.Filter:
		guard, err := b.CompilePred(t.Cond)
		if err != nil {
			return 0, err
		}
		// ∃m ∈ path(n): cond(m) ∧ cont(m) — flattened into this AFA.
		return b.CompilePathTo(t.Path, b.NewAnd(guard, cont))
	default:
		return 0, fmt.Errorf("mfa: unknown path node %T", q)
	}
}

// Finish sets the start state, freezes and returns the AFA. The builder
// must not be reused afterwards.
func (b *AFABuilder) Finish(start int) (*AFA, error) {
	b.a.Start = start
	if err := b.a.Freeze(); err != nil {
		return nil, err
	}
	return b.a, nil
}
