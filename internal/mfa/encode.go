package mfa

// Binary serialization of MFAs. Rewriting a query over a view depends only
// on the query and the view definition, so servers cache rewritten
// automata; this format persists them across processes (e.g. one rewrite
// service, many evaluator replicas). The encoding is a simple versioned
// varint format with no reflection and no external dependencies.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

const (
	binaryMagic   = "SMOQEMFA"
	binaryVersion = 1
)

// WriteBinary serializes the MFA.
func (m *MFA) WriteBinary(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("mfa: encode: %w", err)
	}
	bw := bufio.NewWriter(w)
	enc := &encoder{w: bw}
	enc.bytes([]byte(binaryMagic))
	enc.uvarint(binaryVersion)
	enc.string(m.Name)
	enc.uvarint(uint64(m.Start))
	enc.uvarint(uint64(len(m.States)))
	for i := range m.States {
		st := &m.States[i]
		enc.uvarint(uint64(len(st.Eps)))
		for _, t := range st.Eps {
			enc.uvarint(uint64(t))
		}
		enc.uvarint(uint64(len(st.Trans)))
		for _, e := range st.Trans {
			enc.string(e.Label)
			enc.bool(e.Wild)
			enc.uvarint(uint64(e.To))
		}
		enc.varint(int64(st.Guard))
		enc.varint(int64(st.GuardStart))
		enc.bool(st.Final)
		enc.uvarint(uint64(st.Tag))
	}
	enc.uvarint(uint64(len(m.AFAs)))
	for _, a := range m.AFAs {
		enc.uvarint(uint64(a.Start))
		enc.uvarint(uint64(len(a.States)))
		for i := range a.States {
			st := &a.States[i]
			enc.uvarint(uint64(st.Kind))
			enc.string(st.Label)
			enc.bool(st.Wild)
			enc.uvarint(uint64(len(st.Kids)))
			for _, k := range st.Kids {
				enc.uvarint(uint64(k))
			}
			enc.uvarint(uint64(st.Pred.Kind))
			enc.string(st.Pred.Text)
			enc.varint(int64(st.Pred.K))
		}
	}
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// ReadBinary deserializes an MFA written by WriteBinary, freezing its AFAs
// and validating the result.
func ReadBinary(r io.Reader) (*MFA, error) {
	dec := &decoder{r: bufio.NewReader(r)}
	magic := dec.bytes(len(binaryMagic))
	if dec.err == nil && string(magic) != binaryMagic {
		return nil, fmt.Errorf("mfa: decode: bad magic %q", magic)
	}
	if v := dec.uvarint(); dec.err == nil && v != binaryVersion {
		return nil, fmt.Errorf("mfa: decode: unsupported version %d", v)
	}
	m := &MFA{}
	m.Name = dec.string()
	m.Start = int(dec.uvarint())
	numStates := dec.count()
	for i := 0; i < numStates && dec.err == nil; i++ {
		var st NFAState
		nEps := dec.count()
		for j := 0; j < nEps && dec.err == nil; j++ {
			st.Eps = append(st.Eps, int(dec.uvarint()))
		}
		nTrans := dec.count()
		for j := 0; j < nTrans && dec.err == nil; j++ {
			var e Edge
			e.Label = dec.string()
			e.Wild = dec.bool()
			e.To = int(dec.uvarint())
			st.Trans = append(st.Trans, e)
		}
		st.Guard = int(dec.varint())
		st.GuardStart = int(dec.varint())
		st.Final = dec.bool()
		st.Tag = int(dec.uvarint())
		m.States = append(m.States, st)
	}
	numAFAs := dec.count()
	for i := 0; i < numAFAs && dec.err == nil; i++ {
		a := &AFA{}
		a.Start = int(dec.uvarint())
		n := dec.count()
		for j := 0; j < n && dec.err == nil; j++ {
			var st AFAState
			st.Kind = AFAKind(dec.uvarint())
			st.Label = dec.string()
			st.Wild = dec.bool()
			nk := dec.count()
			for k := 0; k < nk && dec.err == nil; k++ {
				st.Kids = append(st.Kids, int(dec.uvarint()))
			}
			st.Pred.Kind = PredKind(dec.uvarint())
			st.Pred.Text = dec.string()
			st.Pred.K = int(dec.varint())
			a.States = append(a.States, st)
		}
		if dec.err == nil {
			if err := a.Freeze(); err != nil {
				return nil, fmt.Errorf("mfa: decode: %w", err)
			}
		}
		m.AFAs = append(m.AFAs, a)
	}
	if dec.err != nil {
		return nil, fmt.Errorf("mfa: decode: %w", dec.err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mfa: decode: %w", err)
	}
	return m, nil
}

// maxDecodeCount caps list lengths so corrupted input cannot trigger huge
// allocations.
const maxDecodeCount = 16 << 20

type encoder struct {
	w   *bufio.Writer
	err error
	buf [binary.MaxVarintLen64]byte
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *encoder) varint(v int64) {
	n := binary.PutVarint(e.buf[:], v)
	e.bytes(e.buf[:n])
}

func (e *encoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) bool(b bool) {
	if b {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	b := make([]byte, n)
	_, d.err = io.ReadFull(d.r, b)
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	d.err = err
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	d.err = err
	return v
}

// count reads a list length with an allocation-safety cap.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > maxDecodeCount {
		d.err = fmt.Errorf("implausible element count %d", v)
		return 0
	}
	if v > math.MaxInt32 {
		return 0
	}
	return int(v)
}

func (d *decoder) string() string {
	n := d.count()
	if d.err != nil || n == 0 {
		return ""
	}
	return string(d.bytes(n))
}

func (d *decoder) bool() bool { return d.uvarint() != 0 }
