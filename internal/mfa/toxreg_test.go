package mfa

import (
	"errors"
	"testing"

	"smoqe/internal/refeval"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

func extractDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(`<hospital>
  <patient>
    <parent><patient><record><diagnosis>heart disease</diagnosis></record></patient></parent>
    <record><diagnosis>flu</diagnosis></record>
    <record><empty/></record>
  </patient>
  <patient><record><diagnosis>heart disease</diagnosis></record></patient>
</hospital>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestToXregRoundTrip: compile → extract → evaluate must agree with the
// original query on documents, for queries covering every construct.
func TestToXregRoundTrip(t *testing.T) {
	doc := extractDoc(t)
	queries := []string{
		".",
		"patient",
		"patient/record",
		"*",
		"**",
		"patient | patient/parent",
		"(patient/parent)*",
		"(patient/parent)*/patient",
		"patient[record]",
		"patient[record/diagnosis/text()='heart disease']",
		"patient[not(parent)]",
		"patient[parent and record]",
		"patient[parent or record]",
		"patient[(parent/patient)*/record/diagnosis/text()='heart disease']",
		"(patient/parent)*/patient[(parent/patient)*/record/diagnosis/text()='heart disease']",
		"patient[record[diagnosis[text()='flu']]]",
		"patient[record/empty]",
		"patient[record/position()=2]",
		".[patient]",
		"patient[not((parent/patient)*/record/empty)]",
		"nosuchlabel",
	}
	for _, src := range queries {
		q := xpath.MustParse(src)
		m := MustCompile(q)
		back, err := ToXreg(m, 1<<22)
		if err != nil {
			t.Errorf("ToXreg(%q): %v", src, err)
			continue
		}
		want := refeval.Eval(q, doc.Root)
		got := refeval.Eval(back, doc.Root)
		if len(got) != len(want) {
			t.Errorf("query %q: extracted %q returns %d nodes, want %d",
				src, back, len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("query %q: node %d differs (extracted: %s)", src, i, back)
			}
		}
		// The extracted query reparses (syntax sanity).
		if _, err := xpath.Parse(back.String()); err != nil {
			t.Errorf("query %q: extracted query does not reparse: %v\n%s", src, err, back)
		}
	}
}

// TestToXregAtInteriorContexts evaluates extracted queries at non-root
// contexts too.
func TestToXregAtInteriorContexts(t *testing.T) {
	doc := extractDoc(t)
	p1 := doc.Root.ElementChildren()[0]
	for _, src := range []string{"record", "(parent/patient)*", ".[record/empty]"} {
		q := xpath.MustParse(src)
		back, err := ToXreg(MustCompile(q), 1<<22)
		if err != nil {
			t.Fatalf("ToXreg(%q): %v", src, err)
		}
		want := refeval.Eval(q, p1)
		got := refeval.Eval(back, p1)
		if len(got) != len(want) {
			t.Errorf("at %s: query %q: %d vs %d", p1.Path(), src, len(got), len(want))
		}
	}
}

// TestToXregBudget: a tiny budget must fail with ErrBudget on a query
// whose extraction needs room.
func TestToXregBudget(t *testing.T) {
	q := xpath.MustParse("(a/b | c[d])*/e[(f/g)*/h/text()='v']")
	m := MustCompile(q)
	if _, err := ToXreg(m, 3); !errors.Is(err, ErrBudget) {
		t.Errorf("want ErrBudget, got %v", err)
	}
	if _, err := ToXreg(m, 1<<22); err != nil {
		t.Errorf("generous budget should succeed: %v", err)
	}
}

// TestToXregEmptyAutomaton: an automaton with no accepting path extracts
// to a query with an empty result everywhere.
func TestToXregEmptyAutomaton(t *testing.T) {
	b := NewBuilder()
	s0 := b.NewState()
	s1 := b.NewState()
	m := b.FinishMulti(s0, []int{s1}) // final unreachable
	q, err := ToXreg(m, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	doc := extractDoc(t)
	if got := refeval.Eval(q, doc.Root); len(got) != 0 {
		t.Errorf("empty automaton extracted %q selecting %d nodes", q, len(got))
	}
}
