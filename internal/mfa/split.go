package mfa

// The split property of §4: Theorem 4.1 equates Xreg queries with the
// class of MFAs whose AFAs are "split" — boolean structure may be nested
// and paths may cycle (Kleene stars), but cycles carry at most one
// alternation branch, so the automaton never demands two intertwined
// recursive obligations at once. Operationally this is exactly the class
// ToXreg can turn back into a query:
//
//   - no FINAL state lies on a cycle,
//   - no NOT state lies on a cycle,
//   - an AND state on a cycle has at most one operand on that cycle.
//
// Every automaton produced by Compile and Rewrite has the property by
// construction; hand-built MFAs can be checked with HasSplitProperty.

// HasSplitProperty reports whether every AFA of the MFA satisfies the
// split property, i.e. the MFA denotes an Xreg query (Theorem 4.1) and
// ToXreg can extract one (budget permitting).
func HasSplitProperty(m *MFA) bool {
	for _, a := range m.AFAs {
		if !afaIsSplit(a) {
			return false
		}
	}
	return true
}

// afaIsSplit checks the split property on one AFA's full edge graph
// (Kids edges of every state, including TRANS descents).
func afaIsSplit(a *AFA) bool {
	n := len(a.States)
	// Tarjan SCCs over the full graph.
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	sccID := make([]int, n)
	for i := range index {
		index[i] = -1
		sccID[i] = -1
	}
	var stack []int
	next, comps := 0, 0
	sccSize := []int{}
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range a.States[v].Kids {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			size := 0
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccID[w] = comps
				size++
				if w == v {
					break
				}
			}
			sccSize = append(sccSize, size)
			comps++
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
	onCycle := func(s int) bool {
		if sccSize[sccID[s]] > 1 {
			return true
		}
		for _, k := range a.States[s].Kids {
			if k == s {
				return true
			}
		}
		return false
	}
	for s := 0; s < n; s++ {
		if !onCycle(s) {
			continue
		}
		st := &a.States[s]
		switch st.Kind {
		case AFAFinal, AFANot:
			return false
		case AFAAnd:
			cyclicKids := 0
			for _, k := range st.Kids {
				if sccID[k] == sccID[s] {
					cyclicKids++
				}
			}
			if cyclicKids > 1 {
				return false
			}
		}
	}
	return true
}
