package mfa

import (
	"fmt"
	"strings"
)

// Edge is a labeled transition of the selecting NFA: the run moves from the
// current tree node to an element child matching Label (or any element
// child if Wild).
type Edge struct {
	Label string
	Wild  bool
	To    int
}

// Matches reports whether the edge fires on an element child labeled lbl.
func (e Edge) Matches(lbl string) bool { return e.Wild || e.Label == lbl }

func (e Edge) stepString() string {
	if e.Wild {
		return "*"
	}
	return e.Label
}

// NFAState is a state of the selecting NFA N_s of an MFA. The partial map
// λ of the paper (annotating states with AFA names X_i) is the Guard field.
type NFAState struct {
	// Eps are ε-transitions (the run stays at the same tree node).
	Eps []int
	// Trans are child transitions.
	Trans []Edge
	// Guard is the index of the AFA that must hold at a tree node for the
	// run to occupy this state there; -1 if unguarded.
	Guard int
	// GuardStart optionally overrides the entry state of the guard AFA
	// (-1 uses the AFA's own Start). The rewriting algorithm shares one
	// product AFA among many guarded states, each entering at the product
	// state matching its view type; this keeps the rewritten automaton
	// within the O(|Q||σ||D_V|) bound of Theorem 5.1.
	GuardStart int
	// Final marks answer states: when the run occupies a final state at
	// node n (with its guard true), n belongs to the answer set.
	Final bool
	// Tag groups final states into result buckets for batch evaluation
	// (see Merge); single automata leave it 0.
	Tag int
}

// GuardEntry returns the effective AFA entry state for a guarded NFA state,
// or -1 if the state is unguarded.
func (m *MFA) GuardEntry(s int) int {
	st := &m.States[s]
	if st.Guard < 0 {
		return -1
	}
	if st.GuardStart >= 0 {
		return st.GuardStart
	}
	return m.AFAs[st.Guard].Start
}

// MFA is a mixed finite state automaton (N_s, A): a selecting NFA whose
// states may be guarded by AFAs (§4).
type MFA struct {
	Name   string
	States []NFAState
	Start  int
	AFAs   []*AFA
}

// NumStates returns the number of NFA states.
func (m *MFA) NumStates() int { return len(m.States) }

// Size is |M|: NFA states plus NFA edges plus the sizes of all AFAs. It is
// the quantity bounded by O(|Q||σ||D_V|) in Theorem 5.1.
func (m *MFA) Size() int {
	n := len(m.States)
	for i := range m.States {
		n += len(m.States[i].Eps) + len(m.States[i].Trans)
	}
	for _, a := range m.AFAs {
		n += a.NumStates() + a.NumEdges()
	}
	return n
}

// Validate checks internal consistency: indices in range, guards frozen.
func (m *MFA) Validate() error {
	if m.Start < 0 || m.Start >= len(m.States) {
		return fmt.Errorf("mfa: start state %d out of range", m.Start)
	}
	for i := range m.States {
		st := &m.States[i]
		for _, e := range st.Eps {
			if e < 0 || e >= len(m.States) {
				return fmt.Errorf("mfa: state %d: ε-target %d out of range", i, e)
			}
		}
		for _, e := range st.Trans {
			if e.To < 0 || e.To >= len(m.States) {
				return fmt.Errorf("mfa: state %d: target %d out of range", i, e.To)
			}
			if !e.Wild && e.Label == "" {
				return fmt.Errorf("mfa: state %d: transition without label", i)
			}
		}
		if st.Guard >= len(m.AFAs) {
			return fmt.Errorf("mfa: state %d: guard %d out of range (%d AFAs)", i, st.Guard, len(m.AFAs))
		}
		if st.Guard >= 0 && st.GuardStart >= len(m.AFAs[st.Guard].States) {
			return fmt.Errorf("mfa: state %d: guard start %d out of range", i, st.GuardStart)
		}
		// Tags index result buckets; Merge assigns one per input machine,
		// so they can never reach the state count. The bound keeps a
		// forged serialized automaton from driving a NumTags()-sized
		// allocation in EvalTagged.
		if st.Tag < 0 || st.Tag >= len(m.States) {
			return fmt.Errorf("mfa: state %d: tag %d out of range", i, st.Tag)
		}
	}
	// An MFA without final states is legal: it denotes the empty query
	// (e.g. a view query whose steps match no view-DTD edge).
	for i, a := range m.AFAs {
		if !a.frozen {
			return fmt.Errorf("mfa: AFA %d not frozen", i)
		}
	}
	return nil
}

// EpsClosure returns the ε-closure of the given states, ignoring guards
// (guards are checked against tree nodes during evaluation). The result is
// a deduplicated state list in discovery order.
func (m *MFA) EpsClosure(states []int) []int {
	seen := make([]bool, len(m.States))
	var out []int
	var stack []int
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
			out = append(out, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.States[s].Eps {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
				out = append(out, t)
			}
		}
	}
	return out
}

// String renders the MFA for debugging: the selecting NFA followed by its
// AFAs, in the spirit of Fig. 3 of the paper.
func (m *MFA) String() string {
	var b strings.Builder
	name := m.Name
	if name == "" {
		name = "MFA"
	}
	fmt.Fprintf(&b, "%s(start=%d)\n", name, m.Start)
	for i := range m.States {
		st := &m.States[i]
		fmt.Fprintf(&b, "  %3d", i)
		if i == m.Start {
			b.WriteString(" S")
		} else {
			b.WriteString("  ")
		}
		if st.Final {
			b.WriteString(" F")
		} else {
			b.WriteString("  ")
		}
		if st.Guard >= 0 {
			fmt.Fprintf(&b, " λ=X%d", st.Guard)
		}
		for _, e := range st.Eps {
			fmt.Fprintf(&b, "  --ε--> %d", e)
		}
		for _, e := range st.Trans {
			fmt.Fprintf(&b, "  --%s--> %d", e.stepString(), e.To)
		}
		b.WriteString("\n")
	}
	for i, a := range m.AFAs {
		fmt.Fprintf(&b, "X%d = %s", i, a.String())
	}
	return b.String()
}

// Stats summarizes MFA sizes for the Theorem 5.1 experiments.
type Stats struct {
	NFAStates int
	NFAEdges  int
	AFACount  int
	AFAStates int
	AFAEdges  int
	Size      int
}

// ComputeStats returns the size breakdown of the MFA.
func (m *MFA) ComputeStats() Stats {
	st := Stats{NFAStates: len(m.States), AFACount: len(m.AFAs)}
	for i := range m.States {
		st.NFAEdges += len(m.States[i].Eps) + len(m.States[i].Trans)
	}
	for _, a := range m.AFAs {
		st.AFAStates += a.NumStates()
		st.AFAEdges += a.NumEdges()
	}
	st.Size = st.NFAStates + st.NFAEdges + st.AFAStates + st.AFAEdges
	return st
}
