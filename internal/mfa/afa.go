// Package mfa implements the mixed finite state automata of §4 of the
// paper: a selecting NFA whose states may be annotated ("guarded") with
// alternating finite state automata (AFAs) representing Xreg filters, plus
// a compiler from Xreg queries to MFAs (Theorem 4.1) and a naive
// product-graph evaluator used as a correctness oracle. The optimized
// single-pass evaluator HyPE lives in package hype.
package mfa

import (
	"fmt"
	"strings"
)

// NodeView is the minimal read-only view of a document node that predicate
// evaluation needs. *xmltree.Node satisfies it; the columnar store
// (internal/colstore) provides a cursor over its flat arrays, so AFAs run
// unchanged on either representation.
type NodeView interface {
	// TextContent returns the concatenation of the node's direct text
	// children (the value text()='c' predicates test).
	TextContent() string
	// ElemPos returns the 1-based ordinal among same-kind siblings (the
	// value position()=k predicates test).
	ElemPos() int
}

// PredKind distinguishes the predicates that may annotate AFA final states.
type PredKind uint8

const (
	// PredNone means the final state is unconditionally true.
	PredNone PredKind = iota
	// PredText is text()='c'.
	PredText
	// PredPos is position()=k.
	PredPos
)

// Pred is the optional predicate of an AFA final state (§4: final states
// are "optionally annotated with predicates of the form text()='c' or
// position()=k").
type Pred struct {
	Kind PredKind
	Text string // PredText
	K    int    // PredPos
}

// Holds reports whether the predicate holds at node n.
func (p Pred) Holds(n NodeView) bool {
	switch p.Kind {
	case PredNone:
		return true
	case PredText:
		return n.TextContent() == p.Text
	case PredPos:
		// ElemPos is the element ordinal among element siblings, matching
		// XPath semantics even in mixed content (text siblings don't count).
		return n.ElemPos() == p.K
	default:
		return false
	}
}

func (p Pred) String() string {
	switch p.Kind {
	case PredNone:
		return ""
	case PredText:
		return fmt.Sprintf("[text()=%q]", p.Text)
	case PredPos:
		return fmt.Sprintf("[position()=%d]", p.K)
	default:
		return "[?]"
	}
}

// AFAKind is the kind of an AFA state. Per §4, states are partitioned into
// operator states (AND/OR/NOT), transition states, and final states.
type AFAKind uint8

const (
	// AFAOr is an OR operator state; its value is the disjunction of its
	// children, evaluated at the same tree node. OR of nothing is false.
	AFAOr AFAKind = iota
	// AFAAnd is an AND operator state; conjunction at the same node.
	// AND of nothing is true.
	AFAAnd
	// AFANot negates its single child at the same node.
	AFANot
	// AFATrans consumes one child step: its value at n is true iff some
	// element child of n matching Label/Wild makes the target state true.
	AFATrans
	// AFAFinal is a final state; true iff its predicate holds at the node.
	AFAFinal
)

func (k AFAKind) String() string {
	switch k {
	case AFAOr:
		return "OR"
	case AFAAnd:
		return "AND"
	case AFANot:
		return "NOT"
	case AFATrans:
		return "TRANS"
	case AFAFinal:
		return "FINAL"
	default:
		return fmt.Sprintf("AFAKind(%d)", uint8(k))
	}
}

// AFAState is one state of an AFA.
type AFAState struct {
	Kind AFAKind
	// Label/Wild describe the child step of an AFATrans state.
	Label string
	Wild  bool
	// Kids are the same-node children of operator states (exactly one for
	// NOT), or the single target (at a child tree node) of a TRANS state.
	Kids []int
	// Pred annotates FINAL states.
	Pred Pred
}

// AFA is an alternating finite automaton over a tree, evaluated at a node.
// The value of the automaton at node n is the value of Start at n.
//
// The same-node subgraph (operator states and their Kids edges) may be
// cyclic — Kleene stars inside filters create OR-cycles — but cycles never
// pass through NOT states (validated by Freeze), so per-node evaluation is
// a monotone least-fixpoint computed SCC by SCC.
type AFA struct {
	States []AFAState
	Start  int

	// sccs holds the strongly connected components of the same-node
	// subgraph in dependency order (children before parents); cyclic
	// components are iterated to a fixpoint during evaluation.
	sccs   [][]int
	cyclic []bool
	frozen bool
}

// NumStates returns the number of AFA states.
func (a *AFA) NumStates() int { return len(a.States) }

// NumEdges returns the number of Kids edges.
func (a *AFA) NumEdges() int {
	n := 0
	for i := range a.States {
		n += len(a.States[i].Kids)
	}
	return n
}

// sameNodeKids returns the Kids edges that stay at the same tree node
// (operator-state edges; TRANS edges descend and are excluded).
func (a *AFA) sameNodeKids(s int) []int {
	st := &a.States[s]
	if st.Kind == AFATrans || st.Kind == AFAFinal {
		return nil
	}
	return st.Kids
}

// Freeze validates the AFA and precomputes the SCC evaluation order. It
// must be called once after construction; evaluation panics on an unfrozen
// AFA.
func (a *AFA) Freeze() error {
	if err := a.validate(); err != nil {
		return err
	}
	a.computeSCCs()
	// No NOT state may sit on a same-node cycle (it would make the
	// fixpoint non-monotone). By construction from Xreg this never
	// happens; hand-built AFAs are rejected here.
	for i, comp := range a.sccs {
		if !a.cyclic[i] {
			continue
		}
		for _, s := range comp {
			if a.States[s].Kind == AFANot {
				return fmt.Errorf("mfa: AFA state %d: NOT on a same-node cycle", s)
			}
		}
	}
	a.frozen = true
	return nil
}

// MustFreeze is Freeze but panics on error.
func (a *AFA) MustFreeze() {
	if err := a.Freeze(); err != nil {
		panic(err)
	}
}

func (a *AFA) validate() error {
	if a.Start < 0 || a.Start >= len(a.States) {
		return fmt.Errorf("mfa: AFA start state %d out of range", a.Start)
	}
	for i := range a.States {
		st := &a.States[i]
		for _, k := range st.Kids {
			if k < 0 || k >= len(a.States) {
				return fmt.Errorf("mfa: AFA state %d: child %d out of range", i, k)
			}
		}
		switch st.Kind {
		case AFANot:
			if len(st.Kids) != 1 {
				return fmt.Errorf("mfa: AFA state %d: NOT must have exactly one child, has %d", i, len(st.Kids))
			}
		case AFAAnd:
			// An empty AND would be constant true under EvalAt but is
			// classified unprovable by the pruning metadata; no builder
			// produces one, so reject it outright (an empty OR is the
			// canonical constant-false placeholder and stays legal).
			if len(st.Kids) == 0 {
				return fmt.Errorf("mfa: AFA state %d: AND must have at least one child", i)
			}
		case AFATrans:
			if len(st.Kids) != 1 {
				return fmt.Errorf("mfa: AFA state %d: TRANS must have exactly one target, has %d", i, len(st.Kids))
			}
			if !st.Wild && st.Label == "" {
				return fmt.Errorf("mfa: AFA state %d: TRANS without label", i)
			}
		case AFAFinal:
			if len(st.Kids) != 0 {
				return fmt.Errorf("mfa: AFA state %d: FINAL must have no children", i)
			}
		}
	}
	return nil
}

// computeSCCs runs Tarjan's algorithm on the same-node subgraph. Tarjan
// emits components only after all components they can reach, i.e. children
// first — exactly the evaluation order we need.
func (a *AFA) computeSCCs() {
	n := len(a.States)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	a.sccs = a.sccs[:0]
	a.cyclic = a.cyclic[:0]

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range a.sameNodeKids(v) {
			if index[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			cyc := len(comp) > 1
			if !cyc {
				// Self-loop?
				for _, w := range a.sameNodeKids(comp[0]) {
					if w == comp[0] {
						cyc = true
						break
					}
				}
			}
			a.sccs = append(a.sccs, comp)
			a.cyclic = append(a.cyclic, cyc)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == -1 {
			strongconnect(v)
		}
	}
}

// SCCOrder exposes the frozen evaluation order: the strongly connected
// components of the same-node subgraph, children before parents, together
// with the per-component cyclic flags. Compiled evaluators (package hype)
// replay this order instruction by instruction; the returned slices are the
// AFA's own and must not be modified.
func (a *AFA) SCCOrder() (comps [][]int, cyclic []bool) {
	if !a.frozen {
		panic("mfa: SCCOrder on unfrozen AFA")
	}
	return a.sccs, a.cyclic
}

// EvalAt computes the truth vector of all AFA states at node n, given
// transVals: for each TRANS state s, transVals[s] must already hold the
// disjunction over n's matching element children c of the value of the
// target state at c. Operator, NOT and FINAL values are derived here in
// SCC order; cyclic (star) components are iterated to their least
// fixpoint. The returned slice is indexed by state.
func (a *AFA) EvalAt(n NodeView, transVals []bool) []bool {
	return a.EvalAtInto(n, transVals, make([]bool, len(a.States)))
}

// EvalAtInto is EvalAt writing into a caller-provided buffer of length
// NumStates (it is cleared first); evaluation loops reuse buffers to avoid
// per-node allocation.
func (a *AFA) EvalAtInto(n NodeView, transVals []bool, vals []bool) []bool {
	return a.EvalAtMasked(n, transVals, vals, nil)
}

// EvalAtMasked is EvalAtInto restricted to the states whose bit is set in
// member (a bitset over states; nil means all). The member set must be
// closed under same-node children — the relevance sets HyPE maintains are —
// so skipped states are never read by evaluated ones. Skipped states
// report false.
func (a *AFA) EvalAtMasked(n NodeView, transVals []bool, vals []bool, member []uint64) []bool {
	if !a.frozen {
		panic("mfa: EvalAt on unfrozen AFA")
	}
	for i := range vals {
		vals[i] = false
	}
	in := func(s int) bool {
		return member == nil || member[s>>6]&(1<<(uint(s)&63)) != 0
	}
	step := func(s int) bool {
		st := &a.States[s]
		switch st.Kind {
		case AFAFinal:
			return st.Pred.Holds(n)
		case AFATrans:
			return transVals[s]
		case AFANot:
			return !vals[st.Kids[0]]
		case AFAAnd:
			for _, k := range st.Kids {
				if !vals[k] {
					return false
				}
			}
			return true
		case AFAOr:
			for _, k := range st.Kids {
				if vals[k] {
					return true
				}
			}
			return false
		default:
			panic("mfa: bad AFA state kind")
		}
	}
	for i, comp := range a.sccs {
		if !a.cyclic[i] {
			s := comp[0]
			if in(s) {
				vals[s] = step(s)
			}
			continue
		}
		// Monotone fixpoint: all states start false; |comp| rounds
		// suffice since each round either stabilizes or flips at least
		// one state to true.
		for changed := true; changed; {
			changed = false
			for _, s := range comp {
				if !vals[s] && in(s) && step(s) {
					vals[s] = true
					changed = true
				}
			}
		}
	}
	return vals
}

// String renders the AFA for debugging.
func (a *AFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AFA(start=%d)\n", a.Start)
	for i := range a.States {
		st := &a.States[i]
		fmt.Fprintf(&b, "  %3d %-5s", i, st.Kind)
		switch st.Kind {
		case AFATrans:
			lbl := st.Label
			if st.Wild {
				lbl = "*"
			}
			fmt.Fprintf(&b, " --%s--> %d", lbl, st.Kids[0])
		case AFAFinal:
			fmt.Fprintf(&b, " %s", st.Pred)
		default:
			fmt.Fprintf(&b, " -> %v", st.Kids)
		}
		b.WriteString("\n")
	}
	return b.String()
}
