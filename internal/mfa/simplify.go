package mfa

import "sort"

// Simplification of MFAs. Thompson-style compilation and especially the
// view-rewriting product leave many administrative ε-states behind;
// Simplify collapses them without changing the recognized query:
//
//   - pure forwarding states (non-final, unguarded, no label transitions,
//     exactly one ε-successor) are merged into their successor;
//   - states unreachable from the start and states from which no final
//     state is reachable are dropped (runs through them can never
//     contribute an answer);
//   - duplicate transitions are removed;
//   - unused AFAs are dropped and the remaining ones are compacted the
//     same way (single-child AND/OR states forward to their child, states
//     unreachable from any guard entry are dropped).
//
// The result is a fresh, equivalent MFA; the input is not modified.

// Simplify returns an equivalent, usually much smaller MFA.
func Simplify(m *MFA) *MFA {
	n := len(m.States)

	// ---- 1. Alias resolution for pure forwarding states.
	alias := make([]int, n)
	for s := range alias {
		alias[s] = s
	}
	for s := 0; s < n; s++ {
		st := &m.States[s]
		if !st.Final && st.Guard < 0 && len(st.Trans) == 0 && len(st.Eps) == 1 {
			alias[s] = st.Eps[0]
		}
	}
	// Path-compress with cycle protection: a pure-ε cycle is collectively
	// dead weight; break it by letting its entry state represent it.
	target := make([]int, n)
	for s := range target {
		target[s] = -1
	}
	var resolve func(s int, onPath map[int]bool) int
	resolve = func(s int, onPath map[int]bool) int {
		if target[s] >= 0 {
			return target[s]
		}
		if alias[s] == s || onPath[s] {
			target[s] = s
			return s
		}
		onPath[s] = true
		t := resolve(alias[s], onPath)
		delete(onPath, s)
		target[s] = t
		return t
	}
	for s := 0; s < n; s++ {
		resolve(s, map[int]bool{})
	}

	// ---- 2. Productive states (some final reachable through any edges,
	// following targets).
	productive := make([]bool, n)
	for s := 0; s < n; s++ {
		productive[s] = m.States[s].Final
	}
	for changed := true; changed; {
		changed = false
		for s := 0; s < n; s++ {
			if productive[s] {
				continue
			}
			st := &m.States[s]
			hit := false
			for _, t := range st.Eps {
				if productive[target[t]] {
					hit = true
				}
			}
			for _, e := range st.Trans {
				if productive[target[e.To]] {
					hit = true
				}
			}
			if hit {
				productive[s] = true
				changed = true
			}
		}
	}

	// ---- 3. Reachable-and-productive set, from the start.
	start := target[m.Start]
	keep := make([]bool, n)
	if productive[start] {
		stack := []int{start}
		keep[start] = true
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st := &m.States[s]
			push := func(t int) {
				t = target[t]
				if productive[t] && !keep[t] {
					keep[t] = true
					stack = append(stack, t)
				}
			}
			for _, t := range st.Eps {
				push(t)
			}
			for _, e := range st.Trans {
				push(e.To)
			}
		}
	} else {
		// Empty query: keep just the start state.
		keep[start] = true
	}

	// ---- 4. Renumber and rebuild.
	newID := make([]int, n)
	for s := range newID {
		newID[s] = -1
	}
	out := &MFA{Name: m.Name}
	for s := 0; s < n; s++ {
		if keep[s] {
			newID[s] = len(out.States)
			out.States = append(out.States, NFAState{Guard: -1, GuardStart: -1})
		}
	}
	out.Start = newID[start]

	// AFA usage: collect guard entry roots per AFA.
	afaRoots := make(map[int][]int) // old AFA index -> entry states needed
	for s := 0; s < n; s++ {
		if !keep[s] {
			continue
		}
		st := &m.States[s]
		if st.Guard >= 0 {
			afaRoots[st.Guard] = append(afaRoots[st.Guard], m.GuardEntry(s))
		}
	}
	afaMap := make(map[int]int)           // old AFA index -> new AFA index
	entryMap := make(map[int]map[int]int) // old AFA index -> old entry -> new entry
	// Deterministic output order (map iteration would permute AFA indices
	// across runs, making serialized automata non-reproducible).
	usedAFAs := make([]int, 0, len(afaRoots))
	for g := range afaRoots {
		usedAFAs = append(usedAFAs, g)
	}
	sort.Ints(usedAFAs)
	for _, g := range usedAFAs {
		sa, remap := simplifyAFA(m.AFAs[g], afaRoots[g])
		afaMap[g] = len(out.AFAs)
		out.AFAs = append(out.AFAs, sa)
		entryMap[g] = remap
	}

	for s := 0; s < n; s++ {
		if !keep[s] {
			continue
		}
		st := &m.States[s]
		ns := &out.States[newID[s]]
		ns.Final = st.Final
		ns.Tag = st.Tag
		if st.Guard >= 0 {
			ns.Guard = afaMap[st.Guard]
			ns.GuardStart = entryMap[st.Guard][m.GuardEntry(s)]
		}
		epsSeen := map[int]bool{}
		for _, t := range st.Eps {
			t = target[t]
			if !keep[t] {
				continue
			}
			nt := newID[t]
			if nt == newID[s] || epsSeen[nt] {
				continue // self-loops and duplicates are useless
			}
			epsSeen[nt] = true
			ns.Eps = append(ns.Eps, nt)
		}
		transSeen := map[Edge]bool{}
		for _, e := range st.Trans {
			t := target[e.To]
			if !keep[t] {
				continue
			}
			ne := Edge{Label: e.Label, Wild: e.Wild, To: newID[t]}
			if transSeen[ne] {
				continue
			}
			transSeen[ne] = true
			ns.Trans = append(ns.Trans, ne)
		}
	}
	return out
}

// simplifyAFA compacts one AFA, keeping the given entry roots (plus the
// nominal start) addressable, and returns the old→new state mapping for
// them.
func simplifyAFA(a *AFA, roots []int) (*AFA, map[int]int) {
	n := len(a.States)

	// Alias single-child AND/OR states to their child (cycle-protected:
	// pure single-child cycles evaluate to false and are left alone).
	alias := make([]int, n)
	for s := range alias {
		alias[s] = s
	}
	for s := 0; s < n; s++ {
		st := &a.States[s]
		if (st.Kind == AFAAnd || st.Kind == AFAOr) && len(st.Kids) == 1 {
			alias[s] = st.Kids[0]
		}
	}
	target := make([]int, n)
	for s := range target {
		target[s] = -1
	}
	var resolve func(s int, onPath map[int]bool) int
	resolve = func(s int, onPath map[int]bool) int {
		if target[s] >= 0 {
			return target[s]
		}
		if alias[s] == s || onPath[s] {
			target[s] = s
			return s
		}
		onPath[s] = true
		t := resolve(alias[s], onPath)
		delete(onPath, s)
		target[s] = t
		return t
	}
	for s := 0; s < n; s++ {
		resolve(s, map[int]bool{})
	}

	// Reachability from the roots and the start.
	keep := make([]bool, n)
	var stack []int
	mark := func(s int) {
		s = target[s]
		if !keep[s] {
			keep[s] = true
			stack = append(stack, s)
		}
	}
	mark(a.Start)
	for _, r := range roots {
		mark(r)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, k := range a.States[s].Kids {
			mark(k)
		}
	}

	newID := make([]int, n)
	for s := range newID {
		newID[s] = -1
	}
	out := &AFA{}
	for s := 0; s < n; s++ {
		if keep[s] {
			newID[s] = len(out.States)
			out.States = append(out.States, AFAState{})
		}
	}
	for s := 0; s < n; s++ {
		if !keep[s] {
			continue
		}
		st := a.States[s]
		ns := &out.States[newID[s]]
		ns.Kind = st.Kind
		ns.Label = st.Label
		ns.Wild = st.Wild
		ns.Pred = st.Pred
		for _, k := range st.Kids {
			ns.Kids = append(ns.Kids, newID[target[k]])
		}
	}
	out.Start = newID[target[a.Start]]
	out.MustFreeze()

	remap := make(map[int]int, len(roots)+1)
	remap[a.Start] = out.Start
	for _, r := range roots {
		remap[r] = newID[target[r]]
	}
	return out, remap
}
