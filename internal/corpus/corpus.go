package corpus

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"smoqe/internal/colstore"
	"smoqe/internal/failpoint"
	"smoqe/internal/guard"
	"smoqe/internal/hype"
	"smoqe/internal/trace"
	"smoqe/internal/xmltree"
)

// Status is a document's lifecycle state. Only indexed documents are
// served; pending documents are awaiting (re)indexing or a retry window;
// quarantined documents failed validation and are never answered from
// until a file change or an explicit reindex clears them.
type Status string

const (
	StatusIndexed     Status = "indexed"
	StatusPending     Status = "pending"
	StatusQuarantined Status = "quarantined"
)

// Document file extensions a collection serves.
const (
	extXML      = ".xml"
	extSnapshot = ".smoqe-snapshot"
)

// ErrReindexInProgress reports a manual reindex request that found a scan
// already running for the collection; callers retry after a scan interval.
var ErrReindexInProgress = errors.New("corpus: reindex already in progress")

// quarantineError marks a validation failure as permanent: no retries, the
// document goes straight to quarantine.
type quarantineError struct {
	reason string
}

func (e *quarantineError) Error() string { return e.reason }

// Options tunes a Manager. The zero value is usable; zero fields take the
// defaults documented on each.
type Options struct {
	// ScanInterval is the background rescan period (default 2s).
	ScanInterval time.Duration
	// StaleAfter marks a collection stale when its last completed scan is
	// older than this (default 3×ScanInterval). Stale collections keep
	// serving their last good generation, flagged as degraded.
	StaleAfter time.Duration
	// RetryBase is the first retry backoff for a transiently failing
	// document (default 100ms); doubled per retry up to RetryMax (default
	// 5s), with ±25% jitter to spread herds.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxRetries bounds transient retries per file change before the
	// document is quarantined (default 3).
	MaxRetries int
	// ParseLimits bounds XML documents admitted into the corpus.
	ParseLimits xmltree.ParseLimits
	// Logf receives operational messages (quarantines, manifest recovery
	// fallbacks). Nil means silent.
	Logf func(format string, args ...any)
	// OnScan is invoked after every completed collection scan with the
	// post-scan snapshot and the scan duration; the serving layer hangs
	// metrics off it. Nil means no callback.
	OnScan func(info CollectionInfo, elapsed time.Duration)
	// Now is the clock seam (default time.Now).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ScanInterval <= 0 {
		o.ScanInterval = 2 * time.Second
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 3 * o.ScanInterval
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Doc is one document's in-memory record. Docs are immutable snapshots:
// the indexer replaces the whole value on change, so readers may hold one
// across a scan without locking.
type Doc struct {
	// Name is the file name, extension included (it is the identity — two
	// files differing only in extension are two documents).
	Name   string
	Status Status
	// Reason explains a quarantine or pending-retry state.
	Reason string
	// Retries counts transient failures since the last successful index
	// or file change.
	Retries int
	// NextRetry gates the next indexing attempt of a transiently failing
	// document (zero when none is scheduled).
	NextRetry time.Time
	// Size, MtimeNS and CRC identify the validated file content; a
	// matching size+mtime with a differing CRC quarantines the document
	// (silent corruption).
	Size    int64
	MtimeNS int64
	CRC     uint32
	// Fingerprint drives corpus-level prefiltering (indexed docs only).
	Fingerprint hype.Fingerprint
	// Tree is the parsed document (indexed docs only).
	Tree *xmltree.Document
}

// CollectionInfo is a point-in-time summary of one collection.
type CollectionInfo struct {
	Name        string    `json:"name"`
	Generation  uint64    `json:"generation"`
	Indexed     int       `json:"indexed"`
	Pending     int       `json:"pending"`
	Quarantined int       `json:"quarantined"`
	Stale       bool      `json:"stale"`
	LastScan    time.Time `json:"last_scan"`
}

// Collection is one directory of documents plus its manifest state.
type Collection struct {
	name string
	dir  string

	mu         sync.RWMutex
	docs       map[string]*Doc // guarded by mu; keyed by Doc.Name
	generation uint64          // guarded by mu; bumped on every state change
	lastScan   time.Time       // guarded by mu; completion time of the last scan
	scanning   bool            // guarded by mu; one scan at a time per collection
	dirty      bool            // guarded by mu; in-memory state newer than the durable manifest
}

// Manager owns a corpus root directory: every immediate subdirectory is a
// collection. Open recovers durable state and indexes synchronously;
// Start adds the background rescan loop.
type Manager struct {
	dir string
	opt Options

	mu   sync.RWMutex
	cols map[string]*Collection // guarded by mu; keyed by collection name

	startOnce sync.Once
	cancel    context.CancelFunc // guarded by mu; set once by Start
	wg        sync.WaitGroup
	started   bool // guarded by mu; set by Start, read by Info for staleness
}

// Open recovers every collection under dir from its newest consistent
// manifest generation and runs one synchronous scan, so a successful Open
// means the corpus is immediately serveable: every document is either
// indexed or quarantined, and the manifests on disk reflect it.
func Open(ctx context.Context, dir string, opt Options) (*Manager, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("corpus: %s is not a directory", dir)
	}
	m := &Manager{dir: dir, opt: opt.withDefaults(), cols: make(map[string]*Collection)}
	if err := m.scanAll(ctx); err != nil {
		return nil, err
	}
	return m, nil
}

// Start launches the background rescan loop. The loop stops when ctx is
// cancelled or Close is called; Close (or Wait after cancelling ctx)
// drains it.
func (m *Manager) Start(ctx context.Context) {
	m.startOnce.Do(func() {
		loopCtx, cancel := context.WithCancel(ctx)
		m.mu.Lock()
		m.cancel = cancel
		m.started = true
		m.mu.Unlock()
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			guard.Protect("corpus.loop", func() error {
				m.loop(loopCtx)
				return nil
			})
		}()
	})
}

// Close stops the background loop (if any) and waits for it to drain.
func (m *Manager) Close() {
	m.mu.RLock()
	cancel := m.cancel
	m.mu.RUnlock()
	if cancel != nil {
		cancel()
	}
	m.wg.Wait()
}

// Wait blocks until the background loop has drained (after its context is
// cancelled).
func (m *Manager) Wait() { m.wg.Wait() }

// loop is the background indexer: one full rescan per tick.
func (m *Manager) loop(ctx context.Context) {
	t := time.NewTicker(m.opt.ScanInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := m.scanAll(ctx); err != nil {
				m.opt.Logf("corpus: scan: %v", err)
			}
		}
	}
}

// Collections returns the sorted collection names.
func (m *Manager) Collections() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.cols))
	for name := range m.cols {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Collection returns one collection by name.
func (m *Manager) Collection(name string) (*Collection, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c, ok := m.cols[name]
	return c, ok
}

// Infos returns a snapshot of every collection, sorted by name.
func (m *Manager) Infos() []CollectionInfo {
	m.mu.RLock()
	cols := make([]*Collection, 0, len(m.cols))
	for _, c := range m.cols {
		cols = append(cols, c)
	}
	m.mu.RUnlock()
	infos := make([]CollectionInfo, 0, len(cols))
	for _, c := range cols {
		infos = append(infos, m.Info(c))
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Info snapshots one collection's counters.
func (m *Manager) Info(c *Collection) CollectionInfo {
	m.mu.RLock()
	started := m.started
	m.mu.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	info := CollectionInfo{
		Name:       c.name,
		Generation: c.generation,
		LastScan:   c.lastScan,
	}
	for _, d := range c.docs {
		switch d.Status {
		case StatusIndexed:
			info.Indexed++
		case StatusQuarantined:
			info.Quarantined++
		default:
			info.Pending++
		}
	}
	// A corpus without a background loop is only as fresh as its last
	// explicit scan; staleness is not meaningful there.
	if started && m.opt.Now().Sub(c.lastScan) > m.opt.StaleAfter {
		info.Stale = true
	}
	return info
}

// Docs returns the collection's document records sorted by name, filtered
// to the given statuses (all statuses when none are given). The returned
// Docs are immutable snapshots safe to use without locks.
func (c *Collection) Docs(statuses ...Status) []*Doc {
	c.mu.RLock()
	defer c.mu.RUnlock()
	docs := make([]*Doc, 0, len(c.docs))
	for _, d := range c.docs {
		if len(statuses) > 0 {
			keep := false
			for _, s := range statuses {
				if d.Status == s {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	return docs
}

// Generation returns the collection's current generation.
func (c *Collection) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.generation
}

// Name returns the collection's name (its directory base name).
func (c *Collection) Name() string { return c.name }

// Reindex runs one synchronous scan of the named collection with all
// quarantines and retry budgets cleared — the manual escape hatch after an
// operator fixes files in place. It returns ErrReindexInProgress when a
// scan is already running.
func (m *Manager) Reindex(ctx context.Context, name string) (CollectionInfo, error) {
	c, ok := m.Collection(name)
	if !ok {
		return CollectionInfo{}, fmt.Errorf("corpus: unknown collection %q", name)
	}
	c.mu.Lock()
	if c.scanning {
		c.mu.Unlock()
		return CollectionInfo{}, ErrReindexInProgress
	}
	c.scanning = true
	// Forget every record so the scan revalidates from scratch. State
	// changes bump the generation as usual.
	c.docs = make(map[string]*Doc)
	c.dirty = true
	c.mu.Unlock()
	m.scanCollection(ctx, c, true)
	return m.Info(c), nil
}

// scanAll discovers collections (one per subdirectory) and scans each.
func (m *Manager) scanAll(ctx context.Context) error {
	if err := failpoint.Inject(failpoint.SiteCorpusScan); err != nil {
		return err
	}
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	live := make(map[string]bool)
	var scan []*Collection
	m.mu.Lock()
	for _, ent := range ents {
		if !ent.IsDir() || strings.HasPrefix(ent.Name(), ".") {
			continue
		}
		name := ent.Name()
		live[name] = true
		c, ok := m.cols[name]
		if !ok {
			c = m.recoverCollection(name)
			m.cols[name] = c
		}
		scan = append(scan, c)
	}
	for name := range m.cols {
		if !live[name] {
			delete(m.cols, name)
		}
	}
	m.mu.Unlock()
	sort.Slice(scan, func(i, j int) bool { return scan[i].name < scan[j].name })
	for _, c := range scan {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		c.mu.Lock()
		if c.scanning {
			c.mu.Unlock()
			continue
		}
		c.scanning = true
		c.mu.Unlock()
		m.scanCollection(ctx, c, false)
	}
	return nil
}

// recoverCollection loads a newly discovered collection's durable state
// from its newest consistent manifest. The records are advisory: the next
// scan revalidates every file; only quarantine verdicts for byte-identical
// files are trusted without re-reading. Caller holds m.mu.
func (m *Manager) recoverCollection(name string) *Collection {
	dir := filepath.Join(m.dir, name)
	gen, mdocs, skipped := recoverManifest(dir)
	for _, err := range skipped {
		m.opt.Logf("corpus: %s: recovery skipped inconsistent manifest: %v", name, err)
	}
	docs := make(map[string]*Doc, len(mdocs))
	for _, md := range mdocs {
		st := Status(md.Status)
		switch st {
		case StatusIndexed, StatusPending, StatusQuarantined:
		default:
			st = StatusPending
		}
		// Indexed records come back without a tree; the scan revalidates
		// them (and checks the stored CRC) before anything is served.
		docs[md.File] = &Doc{
			Name:    md.File,
			Status:  st,
			Reason:  md.Reason,
			Retries: md.Retries,
			Size:    md.Size,
			MtimeNS: md.MtimeNS,
			CRC:     md.CRC,
		}
	}
	return &Collection{name: name, dir: dir, docs: docs, generation: gen}
}

// scanCollection revalidates one collection: stat every eligible file,
// (re)index what changed or is due for retry, drop records of deleted
// files, and publish a new manifest generation when anything moved.
// The caller must have set c.scanning; scanCollection clears it.
func (m *Manager) scanCollection(ctx context.Context, c *Collection, force bool) {
	start := m.opt.Now()
	sctx, sp := trace.Start(ctx, "corpus.scan")
	defer sp.End()
	sp.Attr("collection", c.name)
	changed := m.scanDocs(sctx, c, force)

	c.mu.Lock()
	if changed {
		c.generation++
		c.dirty = true
	}
	gen := c.generation
	var mdocs []manifestDoc
	if c.dirty {
		mdocs = make([]manifestDoc, 0, len(c.docs))
		for _, d := range c.docs {
			mdocs = append(mdocs, toManifestDoc(d))
		}
	}
	c.mu.Unlock()

	if mdocs != nil {
		err := writeManifest(c.dir, gen, mdocs)
		c.mu.Lock()
		if err != nil {
			// In-memory state stays authoritative; the durable manifest
			// lags until a later scan's write succeeds. Recovery then
			// falls back to the last consistent generation.
			m.opt.Logf("corpus: %s: %v", c.name, err)
		} else if c.generation == gen {
			c.dirty = false
		}
		c.mu.Unlock()
		sp.Error(err)
	}

	now := m.opt.Now()
	c.mu.Lock()
	c.lastScan = now
	c.scanning = false
	c.mu.Unlock()
	if m.opt.OnScan != nil {
		m.opt.OnScan(m.Info(c), now.Sub(start))
	}
}

// scanDocs is scanCollection's document pass; it reports whether any
// record changed.
func (m *Manager) scanDocs(ctx context.Context, c *Collection, force bool) bool {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		m.opt.Logf("corpus: %s: %v", c.name, err)
		return false
	}
	now := m.opt.Now()
	changed := false
	live := make(map[string]bool)
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || strings.HasPrefix(name, ".") {
			continue
		}
		ext := filepath.Ext(name)
		if ext != extXML && ext != extSnapshot {
			continue
		}
		if ctx != nil && ctx.Err() != nil {
			return changed
		}
		live[name] = true
		fi, err := ent.Info()
		if err != nil {
			// Raced with a delete; the next scan settles it.
			continue
		}
		c.mu.RLock()
		prev := c.docs[name]
		c.mu.RUnlock()
		next := m.checkDoc(ctx, c, name, fi, prev, now, force)
		if next == nil {
			continue
		}
		c.mu.Lock()
		c.docs[name] = next
		c.mu.Unlock()
		// Revalidating an unchanged file (the restart path: recovered
		// records carry no tree) is not a state change — the generation
		// only moves when a durable field moves.
		if !docEquivalent(prev, next) {
			changed = true
		}
	}
	c.mu.Lock()
	for name := range c.docs {
		if !live[name] {
			delete(c.docs, name)
			changed = true
		}
	}
	c.mu.Unlock()
	return changed
}

// checkDoc decides one document's fate for this scan: nil means the
// existing record stands; otherwise the returned record replaces it.
func (m *Manager) checkDoc(ctx context.Context, c *Collection, name string, fi fs.FileInfo, prev *Doc, now time.Time, force bool) *Doc {
	same := prev != nil && prev.Size == fi.Size() && prev.MtimeNS == fi.ModTime().UnixNano()
	if same && !force {
		switch prev.Status {
		case StatusIndexed:
			if prev.Tree != nil {
				return nil // unchanged and serveable
			}
			// Recovered from a manifest: revalidate to load the tree.
		case StatusQuarantined:
			// The verdict stands until the file changes (size/mtime) or an
			// explicit reindex forces revalidation.
			return nil
		case StatusPending:
			if !prev.NextRetry.IsZero() && now.Before(prev.NextRetry) {
				return nil // in backoff; not due yet
			}
		}
	}
	retries := 0
	if same && prev != nil && !force {
		retries = prev.Retries
	}
	doc, err := m.indexDoc(ctx, c, name, fi, prev)
	if err == nil {
		doc.Retries = 0
		return doc
	}
	var qe *quarantineError
	if errors.As(err, &qe) || retries >= m.opt.MaxRetries {
		m.opt.Logf("corpus: %s/%s quarantined: %v", c.name, name, err)
		return &Doc{
			Name: name, Status: StatusQuarantined, Reason: err.Error(),
			Retries: retries, Size: fi.Size(), MtimeNS: fi.ModTime().UnixNano(),
			CRC: crcOf(prev),
		}
	}
	m.opt.Logf("corpus: %s/%s index attempt %d failed (will retry): %v", c.name, name, retries+1, err)
	return &Doc{
		Name: name, Status: StatusPending, Reason: err.Error(),
		Retries: retries + 1, NextRetry: now.Add(m.backoff(retries)),
		Size: fi.Size(), MtimeNS: fi.ModTime().UnixNano(), CRC: crcOf(prev),
	}
}

// docEquivalent compares the durable fields of two records; equivalence
// means the manifest would not change.
func docEquivalent(prev, next *Doc) bool {
	return prev != nil && next != nil &&
		prev.Status == next.Status && prev.Reason == next.Reason &&
		prev.Retries == next.Retries && prev.Size == next.Size &&
		prev.MtimeNS == next.MtimeNS && prev.CRC == next.CRC
}

func crcOf(prev *Doc) uint32 {
	if prev == nil {
		return 0
	}
	return prev.CRC
}

// backoff returns the delay before retry number retries+1: exponential
// from RetryBase, capped at RetryMax, with ±25% jitter.
func (m *Manager) backoff(retries int) time.Duration {
	d := m.opt.RetryBase
	for i := 0; i < retries && d < m.opt.RetryMax; i++ {
		d *= 2
	}
	if d > m.opt.RetryMax {
		d = m.opt.RetryMax
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// indexDoc validates and indexes one file: read, checksum, parse,
// fingerprint. Failures are quarantineErrors when the bytes themselves are
// bad (parse failure, checksum mismatch) and plain errors when the attempt
// itself failed (I/O, injected faults) — the latter are retried.
func (m *Manager) indexDoc(ctx context.Context, c *Collection, name string, fi fs.FileInfo, prev *Doc) (*Doc, error) {
	_, sp := trace.Start(ctx, "corpus.index.doc")
	defer sp.End()
	sp.Attr("doc", name)
	if err := failpoint.Inject(failpoint.SiteCorpusIndexDoc); err != nil {
		sp.Error(err)
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(c.dir, name))
	if err != nil {
		sp.Error(err)
		return nil, err
	}
	crc := crc32.ChecksumIEEE(data)
	if prev != nil && prev.CRC != 0 && prev.Size == fi.Size() &&
		prev.MtimeNS == fi.ModTime().UnixNano() && prev.CRC != crc {
		err := &quarantineError{reason: "checksum mismatch (content changed without size/mtime)"}
		sp.Error(err)
		return nil, err
	}
	tree, err := parseDoc(name, data, m.opt.ParseLimits)
	if err != nil {
		sp.Error(err)
		return nil, err
	}
	return &Doc{
		Name:        name,
		Status:      StatusIndexed,
		Size:        fi.Size(),
		MtimeNS:     fi.ModTime().UnixNano(),
		CRC:         crc,
		Fingerprint: hype.FingerprintDoc(tree),
		Tree:        tree,
	}, nil
}

// parseDoc decodes one document by extension. Malformed content is a
// permanent quarantineError; only infrastructure failures stay retryable.
func parseDoc(name string, data []byte, lim xmltree.ParseLimits) (*xmltree.Document, error) {
	switch filepath.Ext(name) {
	case extXML:
		tree, err := xmltree.ParseWithLimits(bytes.NewReader(data), lim)
		if err != nil {
			var fe *failpoint.Error
			if errors.As(err, &fe) {
				return nil, err // injected fault, not a property of the bytes
			}
			return nil, &quarantineError{reason: "parse: " + err.Error()}
		}
		return tree, nil
	case extSnapshot:
		cd, err := colstore.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			var fe *failpoint.Error
			if errors.As(err, &fe) {
				return nil, err
			}
			return nil, &quarantineError{reason: "snapshot: " + err.Error()}
		}
		return cd.Tree(), nil
	default:
		return nil, &quarantineError{reason: "unsupported extension"}
	}
}

// toManifestDoc converts an in-memory record to its durable form.
func toManifestDoc(d *Doc) manifestDoc {
	md := manifestDoc{
		File:    d.Name,
		Size:    d.Size,
		MtimeNS: d.MtimeNS,
		CRC:     d.CRC,
		Status:  string(d.Status),
		Reason:  d.Reason,
		Retries: d.Retries,
	}
	if d.Status == StatusIndexed {
		md.Labels = d.Fingerprint.Labels
		md.TextBloom = fmt.Sprintf("%016x", d.Fingerprint.TextBloom)
		md.Elements = d.Fingerprint.Elements
	}
	return md
}
