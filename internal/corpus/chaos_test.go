package corpus

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"smoqe/internal/failpoint"
	"smoqe/internal/hype"
	"smoqe/internal/mfa"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
)

// evalCorpus runs the query over every indexed document and renders the
// answers as one canonical string (documents in name order, preorder node
// ids per document) — the byte-comparable artifact of the crash-recovery
// property.
func evalCorpus(t *testing.T, c *Collection, query string) string {
	t.Helper()
	eng := hype.New(mfa.MustCompile(xpath.MustParse(query)))
	var sb strings.Builder
	for _, d := range c.Docs(StatusIndexed) {
		if d.Tree == nil {
			t.Fatalf("%s: indexed without tree", d.Name)
		}
		ids := xmltree.IDsOf(eng.Eval(d.Tree.Root))
		fmt.Fprintf(&sb, "%s:%v\n", d.Name, ids)
	}
	return sb.String()
}

// TestChaosCrashRecovery is the headline robustness property: with the
// three corpus failpoints armed at 10% — including panics that kill the
// indexer between the manifest temp-file write and its atomic rename —
// every simulated process death leaves the on-disk state recoverable to a
// consistent generation that never regresses, and once the faults stop, a
// restarted manager answers queries byte-identically to a never-crashed
// golden run. Run under -race in CI.
func TestChaosCrashRecovery(t *testing.T) {
	root := t.TempDir()
	col := filepath.Join(root, "col")
	if err := os.Mkdir(col, 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		writeXML(t, col, fmt.Sprintf("doc%d.xml", i),
			fmt.Sprintf(`<a><b>text%d</b><c><b>more</b></c></a>`, i))
	}
	writeSnapshot(t, col, "snap.smoqe-snapshot", `<a><b>cold</b></a>`)
	clk := newFakeClock()
	opt := testOptions(clk)
	ctx := context.Background()

	// Golden run: no faults, full index, canonical answers.
	golden, err := Open(ctx, root, opt)
	if err != nil {
		t.Fatal(err)
	}
	gc, _ := golden.Collection("col")
	const query = "b"
	goldenAnswers := evalCorpus(t, gc, query)
	if !strings.Contains(goldenAnswers, "doc0.xml") || !strings.Contains(goldenAnswers, "snap.smoqe-snapshot") {
		t.Fatalf("golden run incomplete: %q", goldenAnswers)
	}

	// Chaos rounds: every Open/scan runs with injected errors on scans and
	// per-document indexing, and injected panics mid-manifest-write. A
	// panic is the simulated kill -9: the manager is discarded without
	// cleanup and the next round recovers from disk alone.
	arm := func(site, spec string) {
		t.Helper()
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}
	arm(failpoint.SiteCorpusManifestWrite, "panic@0.1")
	arm(failpoint.SiteCorpusIndexDoc, "error@0.1")
	arm(failpoint.SiteCorpusScan, "error@0.1")
	defer failpoint.DisableAll()

	var lastGen uint64
	crashes := 0
	for round := 0; round < 25; round++ {
		// Touch a document most rounds so manifest generations keep moving
		// while faults fire.
		if round%3 != 0 {
			time.Sleep(2 * time.Millisecond) // new mtime even on coarse clocks
			writeXML(t, col, "doc0.xml",
				fmt.Sprintf(`<a><b>text0</b><c><b>round%d</b></c></a>`, round))
		}
		func() {
			defer func() {
				if recover() != nil {
					crashes++ // the simulated process death
				}
			}()
			m, err := Open(ctx, root, opt)
			if err != nil {
				return // daemon failed to start this round; state is on disk
			}
			// A few extra scans per lifetime widen the crash window.
			for i := 0; i < 3; i++ {
				clk.Advance(time.Second)
				if err := m.scanAll(ctx); err != nil {
					return
				}
			}
		}()

		// Whatever just died, the on-disk state must recover to a
		// consistent generation, and consistent generations never regress.
		gen, docs, _ := recoverManifest(col)
		if gen < lastGen {
			t.Fatalf("round %d: recovered generation regressed %d -> %d", round, lastGen, gen)
		}
		if gen > 0 && len(docs) == 0 {
			t.Fatalf("round %d: generation %d recovered with no documents", round, gen)
		}
		lastGen = gen
	}
	if crashes == 0 {
		t.Log("no injected panic fired in 25 rounds; recovery still exercised via injected errors")
	}

	// Faults stop; one restart plus the manual reindex escape hatch must
	// reproduce the golden answers byte for byte. doc0.xml was rewritten
	// mid-chaos, so restore it first.
	failpoint.DisableAll()
	time.Sleep(2 * time.Millisecond)
	writeXML(t, col, "doc0.xml", `<a><b>text0</b><c><b>more</b></c></a>`)
	m, err := Open(ctx, root, opt)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Reindex(ctx, "col")
	if err != nil {
		t.Fatal(err)
	}
	if info.Quarantined != 0 || info.Pending != 0 || info.Indexed != 7 {
		t.Fatalf("after recovery reindex: %+v, want 7 indexed", info)
	}
	c, _ := m.Collection("col")
	if g := c.Generation(); g < lastGen {
		t.Errorf("final generation %d regressed below last recovered %d", g, lastGen)
	}
	if got := evalCorpus(t, c, query); got != goldenAnswers {
		t.Errorf("post-crash answers diverge from golden run:\ngolden:\n%s\ngot:\n%s", goldenAnswers, got)
	}

	// No half-published state may survive: the recovery contract is torn
	// temp files are ignored and eventually irrelevant.
	names, err := os.ReadDir(col)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })
	for _, de := range names {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Logf("stray temp file %s survived the chaos (recovery ignores it)", de.Name())
		}
	}
}
