// Package corpus manages collections of documents on disk: a directory per
// collection, a crash-safe versioned manifest per directory, and a
// background incremental indexer that keeps per-document fingerprints
// fresh while quarantining — never serving — anything that fails
// validation. See docs/CORPUS.md for the format and the recovery state
// machine.
package corpus

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"smoqe/internal/failpoint"
)

// Manifest file layout (little-endian), mirroring the snapshot trailer
// discipline: everything before the final CRC is covered by it, so a torn
// or bit-flipped manifest is detected before a single byte of it is
// trusted.
//
//	offset  size  field
//	0       8     magic "SMOQMANI"
//	8       4     format version (1)
//	12      8     generation
//	20      4     payload length
//	24      n     payload (JSON, sorted by file name)
//	24+n    4     CRC-32 (IEEE) of bytes [0, 24+n)
const (
	manifestMagic   = "SMOQMANI"
	manifestVersion = 1
	// manifestExt names durable manifest files: manifest-<gen hex>.<ext>.
	manifestExt = ".smoqe-manifest"
	// manifestKeep is how many generations are retained after a write; the
	// newest is authoritative, the rest are crash-recovery fallbacks.
	manifestKeep = 2
	// maxManifestPayload caps the JSON payload a reader will buffer, so a
	// forged length field cannot trigger a huge allocation.
	maxManifestPayload = 1 << 28
)

// manifestDoc is one document's durable record. Fingerprint fields are
// only present for indexed documents; TextBloom is hex to survive JSON's
// number precision limits.
type manifestDoc struct {
	File      string   `json:"file"`
	Size      int64    `json:"size"`
	MtimeNS   int64    `json:"mtime_ns"`
	CRC       uint32   `json:"crc32"`
	Status    string   `json:"status"`
	Reason    string   `json:"reason,omitempty"`
	Retries   int      `json:"retries,omitempty"`
	Labels    []string `json:"labels,omitempty"`
	TextBloom string   `json:"text_bloom,omitempty"`
	Elements  int      `json:"elements,omitempty"`
}

// manifestPayload is the JSON body of a manifest generation.
type manifestPayload struct {
	Docs []manifestDoc `json:"docs"`
}

// ManifestError reports a manifest file that failed validation; recovery
// treats the generation it names as nonexistent and falls back.
type ManifestError struct {
	Path   string
	Reason string
}

func (e *ManifestError) Error() string {
	return fmt.Sprintf("corpus: manifest %s: %s", e.Path, e.Reason)
}

// manifestName returns the durable file name of a generation; the
// zero-padded hex makes lexicographic order equal numeric order.
func manifestName(gen uint64) string {
	return fmt.Sprintf("manifest-%016x%s", gen, manifestExt)
}

// parseManifestName extracts the generation from a manifest file name.
func parseManifestName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, manifestExt) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "manifest-"), manifestExt)
	if len(hex) != 16 {
		return 0, false
	}
	gen, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// encodeManifest serializes one generation, CRC trailer included.
func encodeManifest(gen uint64, docs []manifestDoc) ([]byte, error) {
	sorted := make([]manifestDoc, len(docs))
	copy(sorted, docs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].File < sorted[j].File })
	payload, err := json.Marshal(manifestPayload{Docs: sorted})
	if err != nil {
		return nil, fmt.Errorf("corpus: manifest encode: %w", err)
	}
	buf := make([]byte, 0, 24+len(payload)+4)
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// decodeManifest validates and decodes one manifest file's bytes.
func decodeManifest(path string, buf []byte) (uint64, []manifestDoc, error) {
	fail := func(reason string) (uint64, []manifestDoc, error) {
		return 0, nil, &ManifestError{Path: path, Reason: reason}
	}
	if len(buf) < 28 {
		return fail("truncated header")
	}
	if string(buf[:8]) != manifestMagic {
		return fail("bad magic")
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != manifestVersion {
		return fail(fmt.Sprintf("unsupported version %d", v))
	}
	gen := binary.LittleEndian.Uint64(buf[12:20])
	n := binary.LittleEndian.Uint32(buf[20:24])
	if n > maxManifestPayload || int64(len(buf)) != 24+int64(n)+4 {
		return fail("payload length mismatch")
	}
	want := binary.LittleEndian.Uint32(buf[24+n:])
	if crc32.ChecksumIEEE(buf[:24+n]) != want {
		return fail("checksum mismatch")
	}
	var p manifestPayload
	if err := json.Unmarshal(buf[24:24+n], &p); err != nil {
		return fail("payload: " + err.Error())
	}
	return gen, p.Docs, nil
}

// writeManifest durably publishes one generation: temp file, fsync,
// atomic rename, directory fsync, then pruning of generations older than
// the retained window. The corpus.manifest.write failpoint fires between
// the temp write and the rename — the window in which a crash leaves a
// stray temp file but never a torn manifest.
func writeManifest(dir string, gen uint64, docs []manifestDoc) error {
	buf, err := encodeManifest(gen, docs)
	if err != nil {
		return err
	}
	final := filepath.Join(dir, manifestName(gen))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("corpus: manifest write: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("corpus: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("corpus: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: manifest close: %w", err)
	}
	if err := failpoint.Inject(failpoint.SiteCorpusManifestWrite); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: manifest publish: %w", err)
	}
	syncDir(dir)
	pruneManifests(dir, gen)
	return nil
}

// syncDir best-effort fsyncs a directory so a freshly renamed manifest
// survives power loss; errors are ignored (some filesystems refuse it).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// pruneManifests removes stray temp files and manifest generations older
// than the retained window below latest. Best-effort: a failure leaves
// extra files that the next write retries.
func pruneManifests(dir string, latest uint64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, manifestExt+".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if gen, ok := parseManifestName(name); ok && gen+manifestKeep <= latest {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// recoverManifest loads the newest consistent manifest generation in dir,
// removing stray temp files on the way. Invalid manifests are skipped (the
// recovery fallback), and their paths reported for logging. gen is 0 with
// no docs when no valid manifest exists — a fresh directory.
func recoverManifest(dir string) (gen uint64, docs []manifestDoc, skipped []error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, nil, nil
	}
	var gens []uint64
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, manifestExt+".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if g, ok := parseManifestName(name); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		path := filepath.Join(dir, manifestName(g))
		buf, err := os.ReadFile(path)
		if err != nil {
			skipped = append(skipped, &ManifestError{Path: path, Reason: err.Error()})
			continue
		}
		fgen, fdocs, err := decodeManifest(path, buf)
		if err != nil {
			skipped = append(skipped, err)
			continue
		}
		if fgen != g {
			skipped = append(skipped, &ManifestError{Path: path, Reason: "generation does not match file name"})
			continue
		}
		return fgen, fdocs, skipped
	}
	return 0, nil, skipped
}
