package corpus

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"smoqe/internal/colstore"
	"smoqe/internal/failpoint"
	"smoqe/internal/xmltree"
)

// fakeClock is a settable Options.Now seam.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time // guarded by mu
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func writeXML(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeSnapshot(t *testing.T, dir, name, xml string) {
	t.Helper()
	tree, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	if err := colstore.FromTree(tree).Save(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

// newCorpusDir builds root/col with two XML documents and one snapshot.
func newCorpusDir(t *testing.T) (root, col string) {
	t.Helper()
	root = t.TempDir()
	col = filepath.Join(root, "col")
	if err := os.Mkdir(col, 0o755); err != nil {
		t.Fatal(err)
	}
	writeXML(t, col, "a.xml", `<a><b>one</b></a>`)
	writeXML(t, col, "b.xml", `<a><c>two</c></a>`)
	writeSnapshot(t, col, "c.smoqe-snapshot", `<a><d>three</d></a>`)
	return root, col
}

func testOptions(clk *fakeClock) Options {
	return Options{Now: clk.Now, RetryBase: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond}
}

func TestOpenIndexesAndPersists(t *testing.T) {
	root, col := newCorpusDir(t)
	clk := newFakeClock()
	m, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := m.Collection("col")
	if !ok {
		t.Fatalf("collection col missing; have %v", m.Collections())
	}
	docs := c.Docs(StatusIndexed)
	if len(docs) != 3 {
		t.Fatalf("indexed %d docs, want 3: %+v", len(docs), c.Docs())
	}
	for _, d := range docs {
		if d.Tree == nil {
			t.Errorf("%s: indexed without tree", d.Name)
		}
		if d.Fingerprint.Elements == 0 {
			t.Errorf("%s: empty fingerprint", d.Name)
		}
	}
	gen := c.Generation()
	if gen == 0 {
		t.Fatal("generation still 0 after indexing")
	}
	if _, err := os.Stat(filepath.Join(col, manifestName(gen))); err != nil {
		t.Fatalf("durable manifest missing: %v", err)
	}

	// A restart with unchanged files must converge to the same generation
	// (revalidation is not a state change).
	m2, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := m2.Collection("col")
	if g2 := c2.Generation(); g2 != gen {
		t.Errorf("restart moved generation %d -> %d", gen, g2)
	}
	if n := len(c2.Docs(StatusIndexed)); n != 3 {
		t.Errorf("restart indexed %d docs, want 3", n)
	}
}

func TestQuarantineCorrupt(t *testing.T) {
	root, col := newCorpusDir(t)
	writeXML(t, col, "bad.xml", `<a><unclosed>`)
	writeXML(t, col, "bad.smoqe-snapshot", `not a snapshot`)
	clk := newFakeClock()
	m, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Collection("col")
	q := c.Docs(StatusQuarantined)
	if len(q) != 2 {
		t.Fatalf("quarantined %d docs, want 2: %+v", len(q), c.Docs())
	}
	for _, d := range q {
		if d.Reason == "" {
			t.Errorf("%s: quarantined without reason", d.Name)
		}
		if d.Tree != nil {
			t.Errorf("%s: quarantined doc carries a tree", d.Name)
		}
	}
	if n := len(c.Docs(StatusIndexed)); n != 3 {
		t.Errorf("indexed %d docs, want 3", n)
	}
	gen := c.Generation()

	// The verdict stands across rescans without churning the generation.
	if err := m.scanAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g != gen {
		t.Errorf("rescan of unchanged quarantined docs moved generation %d -> %d", gen, g)
	}

	// Fixing the file clears the quarantine on the next scan.
	time.Sleep(5 * time.Millisecond) // ensure a new mtime even on coarse clocks
	writeXML(t, col, "bad.xml", `<a>fixed</a>`)
	if err := m.scanAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := len(c.Docs(StatusIndexed)); n != 4 {
		t.Errorf("after fix: indexed %d docs, want 4: %+v", n, c.Docs())
	}
}

func TestChangeAndDeleteDetection(t *testing.T) {
	root, col := newCorpusDir(t)
	clk := newFakeClock()
	m, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Collection("col")
	gen := c.Generation()

	time.Sleep(5 * time.Millisecond)
	writeXML(t, col, "a.xml", `<a><b>changed</b><b>more</b></a>`)
	if err := os.Remove(filepath.Join(col, "b.xml")); err != nil {
		t.Fatal(err)
	}
	if err := m.scanAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g := c.Generation(); g <= gen {
		t.Errorf("generation did not advance on change: %d -> %d", gen, g)
	}
	docs := c.Docs(StatusIndexed)
	if len(docs) != 2 {
		t.Fatalf("indexed %d docs, want 2: %+v", len(docs), docs)
	}
	var a *Doc
	for _, d := range docs {
		if d.Name == "a.xml" {
			a = d
		}
		if d.Name == "b.xml" {
			t.Error("deleted b.xml still present")
		}
	}
	if a == nil || a.Fingerprint.Elements != 3 {
		t.Fatalf("a.xml not reindexed: %+v", a)
	}
}

func TestTransientRetryThenQuarantine(t *testing.T) {
	root, _ := newCorpusDir(t)
	if err := failpoint.Enable(failpoint.SiteCorpusIndexDoc, "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	clk := newFakeClock()
	opt := testOptions(clk)
	m, err := Open(context.Background(), root, opt)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Collection("col")
	if n := len(c.Docs(StatusPending)); n != 3 {
		t.Fatalf("pending %d docs after injected failures, want 3: %+v", n, c.Docs())
	}
	for _, d := range c.Docs(StatusPending) {
		if d.Retries != 1 {
			t.Errorf("%s: retries = %d, want 1", d.Name, d.Retries)
		}
		if d.NextRetry.IsZero() {
			t.Errorf("%s: no retry scheduled", d.Name)
		}
	}

	// Not yet due: a scan before the backoff window leaves retries alone.
	if err := m.scanAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Docs(StatusPending) {
		if d.Retries != 1 {
			t.Errorf("%s: early rescan bumped retries to %d", d.Name, d.Retries)
		}
	}

	// Exhaust the retry budget: each due attempt still fails.
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		if err := m.scanAll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.Docs(StatusQuarantined)); n != 3 {
		t.Fatalf("quarantined %d docs after retry exhaustion, want 3: %+v", n, c.Docs())
	}

	// Reindex is the manual escape hatch once the fault is gone.
	failpoint.DisableAll()
	info, err := m.Reindex(context.Background(), "col")
	if err != nil {
		t.Fatal(err)
	}
	if info.Indexed != 3 || info.Quarantined != 0 {
		t.Errorf("after reindex: %+v, want 3 indexed", info)
	}
}

func TestManifestRecoveryFallsBack(t *testing.T) {
	root, col := newCorpusDir(t)
	clk := newFakeClock()
	m, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Collection("col")
	gen1 := c.Generation()

	// Force a second generation so two manifests are retained.
	time.Sleep(5 * time.Millisecond)
	writeXML(t, col, "d.xml", `<a>new</a>`)
	if err := m.scanAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	gen2 := c.Generation()
	if gen2 <= gen1 {
		t.Fatalf("generation did not advance: %d -> %d", gen1, gen2)
	}

	// Corrupt the newest manifest: flip a byte in its payload.
	newest := filepath.Join(col, manifestName(gen2))
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	gen, docs, skipped := recoverManifest(col)
	if gen != gen1 {
		t.Errorf("recovered generation %d, want fallback to %d", gen, gen1)
	}
	if len(skipped) != 1 {
		t.Errorf("skipped %d manifests, want 1: %v", len(skipped), skipped)
	}
	if len(docs) != 3 {
		t.Errorf("fallback manifest has %d docs, want 3", len(docs))
	}

	// A full reopen over the corrupt manifest still converges: the scan
	// revalidates and republishes.
	m2, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := m2.Collection("col")
	if n := len(c2.Docs(StatusIndexed)); n != 4 {
		t.Errorf("reopen indexed %d docs, want 4", n)
	}
	if g := c2.Generation(); g < gen1 {
		t.Errorf("reopen regressed generation to %d (< %d)", g, gen1)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	docs := []manifestDoc{
		{File: "b.xml", Size: 10, MtimeNS: 123, CRC: 7, Status: "indexed", Labels: []string{"a"}, TextBloom: "00000000000000ff", Elements: 2},
		{File: "a.xml", Size: 5, MtimeNS: 456, CRC: 9, Status: "quarantined", Reason: "parse: bad", Retries: 3},
	}
	buf, err := encodeManifest(42, docs)
	if err != nil {
		t.Fatal(err)
	}
	gen, got, err := decodeManifest("t", buf)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 || len(got) != 2 {
		t.Fatalf("decoded gen=%d docs=%d", gen, len(got))
	}
	if got[0].File != "a.xml" || got[1].File != "b.xml" {
		t.Errorf("docs not sorted by file: %+v", got)
	}

	// Every truncation and every single-byte flip must be rejected.
	for n := 0; n < len(buf); n++ {
		if _, _, err := decodeManifest("t", buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for i := 0; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x01
		if _, _, err := decodeManifest("t", mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

func TestManifestNameRoundTrip(t *testing.T) {
	for _, gen := range []uint64{0, 1, 42, 1 << 40} {
		g, ok := parseManifestName(manifestName(gen))
		if !ok || g != gen {
			t.Errorf("parseManifestName(manifestName(%d)) = %d, %v", gen, g, ok)
		}
	}
	for _, bad := range []string{"manifest-zz.smoqe-manifest", "manifest-0.smoqe-manifest", "other.xml", "manifest-0000000000000001.smoqe-manifest.tmp"} {
		if _, ok := parseManifestName(bad); ok {
			t.Errorf("parseManifestName(%q) accepted", bad)
		}
	}
}

func TestManifestPrune(t *testing.T) {
	dir := t.TempDir()
	for gen := uint64(1); gen <= 5; gen++ {
		if err := writeManifest(dir, gen, nil); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != manifestKeep {
		t.Fatalf("retained %v, want %d newest", names, manifestKeep)
	}
	gen, _, _ := recoverManifest(dir)
	if gen != 5 {
		t.Errorf("recovered generation %d, want 5", gen)
	}
}

func TestBackgroundLoopPicksUpChanges(t *testing.T) {
	root, col := newCorpusDir(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{ScanInterval: 10 * time.Millisecond, RetryBase: 5 * time.Millisecond}
	m, err := Open(ctx, root, opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Start(ctx)
	defer m.Close()
	c, _ := m.Collection("col")
	gen := c.Generation()
	time.Sleep(5 * time.Millisecond)
	writeXML(t, col, "late.xml", `<late>doc</late>`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if docs := c.Docs(StatusIndexed); len(docs) == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop never indexed late.xml: %+v", c.Docs())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := c.Generation(); g <= gen {
		t.Errorf("generation did not advance: %d -> %d", gen, g)
	}
	m.Close()
	m.Wait()
}

func TestReindexInProgress(t *testing.T) {
	root, _ := newCorpusDir(t)
	clk := newFakeClock()
	m, err := Open(context.Background(), root, testOptions(clk))
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Collection("col")
	c.mu.Lock()
	c.scanning = true
	c.mu.Unlock()
	if _, err := m.Reindex(context.Background(), "col"); err != ErrReindexInProgress {
		t.Errorf("Reindex during scan: err = %v, want ErrReindexInProgress", err)
	}
	c.mu.Lock()
	c.scanning = false
	c.mu.Unlock()
	if _, err := m.Reindex(context.Background(), "col"); err != nil {
		t.Errorf("Reindex after scan: %v", err)
	}
	if _, err := m.Reindex(context.Background(), "nope"); err == nil || !strings.Contains(err.Error(), "unknown collection") {
		t.Errorf("Reindex(unknown) err = %v", err)
	}
}
