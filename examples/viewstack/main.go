// Stacked (multi-level) views: a hierarchy of two views — the research
// view σ0 of the paper on top of the hospital data, and a public-statistics
// view defined on top of σ0 — with queries answered directly on the source
// document by composing automaton rewritings (RewriteMFA). Extracting an
// intermediate query instead would hit the exponential blow-up of
// Corollary 3.3; the demo measures both routes.
//
//	go run ./examples/viewstack
package main

import (
	"fmt"
	"log"

	"smoqe"
	"smoqe/internal/hospital"
)

const publicDTD = `
dtd public {
  root hospital;
  hospital -> case*;
  case -> diagnosis*;
  diagnosis -> #text;
}`

const publicSpec = `
view public {
  # One case per exposed patient; only family-line diagnoses, no shape.
  hospital/case = patient;
  case/diagnosis = (parent/patient)*/record/diagnosis;
}`

func main() {
	docDTD, err := smoqe.ParseDTD(hospital.DocDTDSource)
	check(err)
	viewDTD, err := smoqe.ParseDTD(hospital.ViewDTDSource)
	check(err)
	sigma1, err := smoqe.ParseView(hospital.Sigma0Source, docDTD, viewDTD)
	check(err)

	pubDTD, err := smoqe.ParseDTD(publicDTD)
	check(err)
	sigma2, err := smoqe.ParseView(publicSpec, viewDTD, pubDTD)
	check(err)

	fmt.Println("view stack: hospital --σ0--> research view --public--> statistics view")
	fmt.Println()

	doc, err := smoqe.ParseDocumentString(hospital.SampleXML)
	check(err)

	// A statistics query over the OUTER view.
	q, err := smoqe.ParseQuery("case[diagnosis/text()='heart disease']")
	check(err)
	fmt.Printf("query on the public view: %s\n\n", q)

	// Compose the rewritings: public query -> automaton over the research
	// view -> automaton over the hospital source.
	m2, err := smoqe.Rewrite(sigma2, q)
	check(err)
	m, err := smoqe.RewriteMFA(sigma1, m2)
	check(err)
	fmt.Printf("automaton over the research view: |M| = %d\n", m2.Size())
	fmt.Printf("automaton over the source:        |M| = %d\n", m.Size())

	answers := smoqe.NewEngine(m).Eval(doc.Root)
	fmt.Printf("answers on the source document: %d patient(s)\n", len(answers))
	for _, n := range answers {
		fmt.Printf("    %s\n", n.Path())
	}

	// Ground truth through double materialization.
	mat1, err := smoqe.Materialize(sigma1, doc)
	check(err)
	mat2, err := smoqe.Materialize(sigma2, mat1.Doc)
	check(err)
	level2 := smoqe.EvalReference(q, mat2.Doc.Root)
	ground := mat1.SourceOf(mat2.SourceOf(level2))
	fmt.Printf("double materialization agrees: %v\n\n", same(ground, answers))

	// Why compose automata instead of queries? Extracting the explicit
	// intermediate query can blow up exponentially (Corollary 3.3).
	if back, err := smoqe.ToXreg(m2, 1<<22); err == nil {
		fmt.Printf("explicit intermediate query would have size %d (automaton: %d)\n", back.Size(), m2.Size())
	} else {
		fmt.Printf("explicit intermediate query exceeds a 4M-node budget (automaton: %d states)\n", m2.Size())
	}

	// And the security property holds through the stack: nothing below
	// the public schema is reachable.
	for _, hidden := range []string{"case/record", "//pname", "patient"} {
		hq, err := smoqe.ParseQuery(hidden)
		check(err)
		hm2, err := smoqe.Rewrite(sigma2, hq)
		check(err)
		hm, err := smoqe.RewriteMFA(sigma1, hm2)
		check(err)
		res := smoqe.NewEngine(hm).Eval(doc.Root)
		fmt.Printf("hidden query %-12q through the stack: %d answer(s)\n", hidden, len(res))
	}
}

func same(a, b []*smoqe.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
