// View materialization and conformance: build σ0(T) for a generated
// hospital document, validate it against the view DTD, inspect provenance,
// and compare the cost of materialize-then-query against rewrite-and-eval.
//
//	go run ./examples/materialize
package main

import (
	"fmt"
	"log"
	"time"

	"smoqe"
	"smoqe/internal/datagen"
	"smoqe/internal/hospital"
)

func main() {
	docDTD, err := smoqe.ParseDTD(hospital.DocDTDSource)
	check(err)
	viewDTD, err := smoqe.ParseDTD(hospital.ViewDTDSource)
	check(err)
	sigma0, err := smoqe.ParseView(hospital.Sigma0Source, docDTD, viewDTD)
	check(err)

	doc := datagen.Generate(datagen.DefaultConfig(2000))
	srcStats := doc.ComputeStats()
	fmt.Printf("source: %d elements (%.1f MB)\n", srcStats.Elements, float64(doc.XMLSize())/(1<<20))

	// Materialize σ0(T) and validate it against the view DTD.
	start := time.Now()
	mat, err := smoqe.Materialize(sigma0, doc)
	check(err)
	tMat := time.Since(start)
	check(viewDTD.CheckDocument(mat.Doc))
	vStats := mat.Doc.ComputeStats()
	fmt.Printf("view:   %d elements (%.1f%% of the source is exposed), conforms to D_V\n",
		vStats.Elements, 100*float64(vStats.Elements)/float64(srcStats.Elements))
	fmt.Printf("        top-level view patients: %d\n", len(mat.Doc.Root.ElementChildren()))

	// Provenance: every view node knows its source node.
	if p := mat.Doc.Root.ElementChildren(); len(p) > 0 {
		fmt.Printf("        first view patient %s <- source %s\n", p[0].Path(), mat.Src[p[0]].Path())
	}

	// Same query, two routes.
	q, err := smoqe.ParseQuery(hospital.QExample41)
	check(err)

	start = time.Now()
	viewNodes := smoqe.EvalReference(q, mat.Doc.Root)
	viaView := mat.SourceOf(viewNodes)
	tQueryView := time.Since(start)

	m, err := smoqe.Rewrite(sigma0, q)
	check(err)
	start = time.Now()
	viaRewrite := smoqe.NewEngine(m).Eval(doc.Root)
	tRewriteEval := time.Since(start)

	fmt.Printf("\nquery: %s\n", q)
	fmt.Printf("materialize (%.1fms) + query view (%.1fms): %d answers\n",
		ms(tMat), ms(tQueryView), len(viaView))
	fmt.Printf("rewrite once + HyPE on source (%.1fms):      %d answers\n",
		ms(tRewriteEval), len(viaRewrite))
	if len(viaView) != len(viaRewrite) {
		log.Fatal("routes disagree!")
	}
	for i := range viaView {
		if viaView[i] != viaRewrite[i] {
			log.Fatal("routes disagree on a node!")
		}
	}
	fmt.Println("both routes return exactly the same source nodes — Q(σ(T)) = M(T).")
	fmt.Println("\nwith many user groups (one view each), the rewriting route needs no")
	fmt.Println("per-group storage and no view maintenance on updates — the paper's point.")
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
