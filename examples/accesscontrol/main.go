// Access control by virtual views — the paper's motivating scenario
// (Examples 1.1–3.1): a hospital exposes only heart-disease patients and
// their ancestor hierarchy to a research institute; names, addresses,
// doctors, tests and siblings stay hidden. The institute's queries are
// rewritten into automata over the source and answered WITHOUT
// materializing the view, and the demo shows why the naive '//' rewriting
// would breach patient privacy while the automaton rewriting does not.
//
//	go run ./examples/accesscontrol
package main

import (
	"fmt"
	"log"

	"smoqe"
	"smoqe/internal/hospital"
)

func main() {
	// The schemas and the view σ0 of Fig. 1 of the paper.
	docDTD, err := smoqe.ParseDTD(hospital.DocDTDSource)
	check(err)
	viewDTD, err := smoqe.ParseDTD(hospital.ViewDTDSource)
	check(err)
	sigma0, err := smoqe.ParseView(hospital.Sigma0Source, docDTD, viewDTD)
	check(err)
	fmt.Printf("view %q: recursive=%v, |σ|=%d\n\n", sigma0.Name, sigma0.IsRecursive(), sigma0.Size())

	// The hospital's source document. Alice has heart disease and a
	// grandmother (Carol) who had it too; Alice's *sibling* Dan also had
	// it, but siblings are not part of the view.
	doc, err := smoqe.ParseDocumentString(hospital.SampleXML)
	check(err)
	check(docDTD.CheckDocument(doc))

	// The institute asks: which patients have an ancestor with heart
	// disease? (Example 1.1 — the query is over the VIEW schema.)
	q, err := smoqe.ParseQuery(hospital.QExample11)
	check(err)
	fmt.Printf("query on the view: %s\n\n", q)

	// Route 1 (what SMOQE does): rewrite into an automaton over the
	// source and evaluate with HyPE. No view is ever materialized.
	m, err := smoqe.Rewrite(sigma0, q)
	check(err)
	st := m.ComputeStats()
	fmt.Printf("rewritten MFA: %d NFA states, %d AFAs, |M|=%d (no exponential blow-up)\n",
		st.NFAStates, st.AFACount, st.Size)
	answers := smoqe.NewEngine(m).Eval(doc.Root)
	fmt.Printf("rewriting route: %d answer(s)\n", len(answers))
	for _, n := range answers {
		fmt.Printf("    %s (%s)\n", n.Path(), pname(n))
	}

	// Route 2 (for comparison only): materialize σ0(T) and query it.
	mat, err := smoqe.Materialize(sigma0, doc)
	check(err)
	viewAnswers := smoqe.EvalReference(q, mat.Doc.Root)
	fmt.Printf("materialization route: %d answer(s) — the same nodes: %v\n\n",
		len(viewAnswers), same(mat.SourceOf(viewAnswers), answers))

	// The security point (Theorem 3.1): the "obvious" source-level
	// rewriting keeps '//' and therefore reaches *siblings*, selecting
	// patients it must not. Eve below has a sick sibling but healthy
	// ancestors: the naive query leaks her, the rewritten MFA does not.
	eve := `<hospital><department><name>d</name>
	 <patient><pname>Eve</pname><address><street>s</street><city>c</city><zip>z</zip></address>
	  <sibling><patient><pname>Sib</pname><address><street>s</street><city>c</city><zip>z</zip></address>
	   <visit><date>1</date><treatment><medication><type>t</type><diagnosis>heart disease</diagnosis></medication></treatment>
	   <doctor><dname>dr</dname><specialty>sp</specialty></doctor></visit></patient></sibling>
	  <visit><date>2</date><treatment><medication><type>t</type><diagnosis>heart disease</diagnosis></medication></treatment>
	  <doctor><dname>dr</dname><specialty>sp</specialty></doctor></visit>
	 </patient></department></hospital>`
	edoc, err := smoqe.ParseDocumentString(eve)
	check(err)
	naive, err := smoqe.ParseQuery(
		"department/patient[visit/treatment/medication/diagnosis/text()='heart disease']" +
			"[*//diagnosis/text()='heart disease']")
	check(err)
	leaked := smoqe.EvalReference(naive, edoc.Root)
	correct := smoqe.NewEngine(m).Eval(edoc.Root)
	fmt.Printf("naive '//' rewriting on Eve's record: %d answer(s)  <- LEAK (her sibling is private)\n", len(leaked))
	fmt.Printf("MFA rewriting on Eve's record:        %d answer(s)  <- correct\n", len(correct))
}

func pname(patient *smoqe.Node) string {
	for _, c := range patient.ElementChildren() {
		if c.Label == "pname" {
			return c.TextContent()
		}
	}
	return "?"
}

func same(a, b []*smoqe.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
