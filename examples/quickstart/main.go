// Quickstart: parse an XML document, run XPath and regular XPath queries
// with the HyPE engine, and inspect evaluation statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smoqe"
)

const doc = `<hospital>
  <patient>
    <parent>
      <patient>
        <record><diagnosis>heart disease</diagnosis></record>
      </patient>
    </parent>
    <record><diagnosis>flu</diagnosis></record>
  </patient>
  <patient>
    <record><diagnosis>heart disease</diagnosis></record>
  </patient>
</hospital>`

func main() {
	tree, err := smoqe.ParseDocumentString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// Plain XPath: '//' works and is internally desugared to (⋃Ele)*.
	show(tree, "//diagnosis")
	show(tree, "patient[record/diagnosis/text()='heart disease']")

	// Regular XPath: general Kleene closure walks the recursive
	// parent/patient hierarchy — not expressible in plain XPath.
	show(tree, "(patient/parent)*/patient[record/diagnosis/text()='heart disease']")

	// Compile once, evaluate many times, look at the pruning statistics.
	q, err := smoqe.ParseQuery("patient[*//diagnosis/text()='heart disease']")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in XPath fragment X: %v\n", smoqe.InFragmentX(q))
	m, err := smoqe.Compile(q)
	if err != nil {
		log.Fatal(err)
	}
	engine := smoqe.NewEngine(m)
	nodes := engine.Eval(tree.Root)
	st := engine.Stats()
	fmt.Printf("%s -> %d node(s); visited %d elements, skipped %d subtrees, cans %d vertices\n",
		q, len(nodes), st.VisitedElements, st.SkippedSubtrees, st.CansVertices)
}

func show(tree *smoqe.Document, query string) {
	nodes, err := smoqe.EvalString(query, tree.Root)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-70s -> %d node(s)\n", query, len(nodes))
	for _, n := range nodes {
		fmt.Printf("    %s\n", n.Path())
	}
}
