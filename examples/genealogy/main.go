// Genealogy patterns with regular XPath — Example 2.1 of the paper: find
// patients whose heart disease skips exactly every other generation. The
// query needs general Kleene closure (q1/(q1)*), so it lies in Xreg but
// NOT in classic XPath; SMOQE evaluates it in a single pass over the data.
// The demo runs it over a generated corpus and cross-checks three engines.
//
//	go run ./examples/genealogy
package main

import (
	"fmt"
	"log"
	"time"

	"smoqe"
	"smoqe/internal/datagen"
	"smoqe/internal/hospital"
)

func main() {
	// A deterministic synthetic corpus: 5,000 patients with recursive
	// family histories (the ToXGene stand-in of §7).
	cfg := datagen.DefaultConfig(5000)
	cfg.HeartFrac = 0.35 // dense enough for skip-a-generation patterns
	doc := datagen.Generate(cfg)
	st := doc.ComputeStats()
	fmt.Printf("corpus: %d elements, %d text nodes, depth %d, %.1f MB\n\n",
		st.Elements, st.Texts, st.MaxDepth, float64(doc.XMLSize())/(1<<20))

	q, err := smoqe.ParseQuery(hospital.QExample21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query (Example 2.1):\n  %s\n", q)
	fmt.Printf("in XPath fragment X: %v (general Kleene star — regular XPath only)\n\n", smoqe.InFragmentX(q))

	m, err := smoqe.Compile(q)
	if err != nil {
		log.Fatal(err)
	}

	// HyPE.
	engine := smoqe.NewEngine(m)
	start := time.Now()
	res := engine.Eval(doc.Root)
	tHype := time.Since(start)
	es := engine.Stats()
	fmt.Printf("HyPE:      %4d matches in %8.3fms (visited %d/%d elements, %d subtrees pruned)\n",
		len(res), ms(tHype), es.VisitedElements, st.Elements, es.SkippedSubtrees)

	// OptHyPE with the subtree index.
	idx := smoqe.BuildIndex(doc, true)
	opt := smoqe.NewOptEngine(m, idx)
	start = time.Now()
	res2 := opt.Eval(doc.Root)
	tOpt := time.Since(start)
	fmt.Printf("OptHyPE-C: %4d matches in %8.3fms (index: %d labels, %d distinct sets)\n",
		len(res2), ms(tOpt), idx.NumLabels(), idx.DistinctSets())

	// The XQuery-translation stand-in (how you'd run this without a
	// regular XPath engine).
	start = time.Now()
	res3 := smoqe.EvalXQueryTranslation(q, doc.Root)
	tXq := time.Since(start)
	fmt.Printf("XQ-transl: %4d matches in %8.3fms\n\n", len(res3), ms(tXq))

	if len(res) != len(res2) || len(res) != len(res3) {
		log.Fatalf("engines disagree: %d vs %d vs %d", len(res), len(res2), len(res3))
	}
	fmt.Printf("all engines agree on %d matching patients; first few:\n", len(res))
	for i, n := range res {
		if i == 5 {
			break
		}
		fmt.Printf("    %s\n", n.TextContent())
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
