// Package smoqe is a Go implementation of SMOQE, the Secure MOdular Query
// Engine of Fan, Geerts, Jia and Kementsietsidis, "Rewriting Regular XPath
// Queries on XML Views", ICDE 2007. It answers regular XPath (Xreg)
// queries posed on possibly recursively defined virtual XML views by
// rewriting them into mixed finite state automata (MFAs) over the source
// document and evaluating the automata in a single pass (HyPE), without
// ever materializing the view.
//
// The package is a thin facade over the implementation packages:
//
//	ParseQuery     – regular XPath (ε, labels, /, |, Q*, filters, //)
//	ParseDTD       – the normal-form DTDs of §2.2
//	ParseView      – views by DTD annotation (§2.3)
//	Compile        – Xreg query → MFA (§4)
//	Rewrite        – view query → source MFA (§5, algorithm rewrite)
//	NewEngine      – HyPE single-pass evaluation (§6)
//	BuildIndex     – the OptHyPE / OptHyPE-C subtree index
//	Materialize    – σ(T), mainly for testing and comparison
//
// Quick start:
//
//	doc, _ := smoqe.ParseDocumentString(xmlText)
//	q, _ := smoqe.ParseQuery("(patient/parent)*/patient[record/diagnosis/text()='heart disease']")
//	nodes, _ := smoqe.Eval(q, doc.Root)
//
// Answering a query on a virtual view:
//
//	v, _ := smoqe.ParseView(viewSpec, docDTD, viewDTD)
//	answers, _ := smoqe.AnswerOnView(v, q, doc)   // = Q(σ(T)), computed on T
package smoqe

import (
	"fmt"
	"io"

	"smoqe/internal/colstore"
	"smoqe/internal/dtd"
	"smoqe/internal/hype"
	"smoqe/internal/mfa"
	"smoqe/internal/refeval"
	"smoqe/internal/rewrite"
	"smoqe/internal/secview"
	"smoqe/internal/twopass"
	"smoqe/internal/view"
	"smoqe/internal/xmltree"
	"smoqe/internal/xpath"
	"smoqe/internal/xqsim"
)

// Core data model -------------------------------------------------------

// Document is an in-memory XML tree (elements and text nodes only).
type Document = xmltree.Document

// Node is one node of a Document.
type Node = xmltree.Node

// DocumentStats summarizes a document's shape.
type DocumentStats = xmltree.Stats

// ColumnarDocument is the columnar (struct-of-arrays) representation of a
// Document: flat preorder columns of interned label ids, subtree intervals
// and text offsets into one shared byte arena. It is immutable after
// construction, safe for concurrent readers, and the unit the snapshot
// format serializes.
type ColumnarDocument = colstore.Document

// SnapshotFileExt is the conventional file extension for binary document
// snapshots written by SaveSnapshot.
const SnapshotFileExt = colstore.FileExt

// DTD is a document type definition in the paper's normal form (§2.2).
type DTD = dtd.DTD

// Query is a parsed regular XPath (Xreg) path expression.
type Query = xpath.Path

// Pred is a parsed Xreg filter expression.
type Pred = xpath.Pred

// View is a view definition σ : D → D_V by DTD annotation (§2.3).
type View = view.View

// ViewEdge names one annotated edge (parent, child) of a view DTD.
type ViewEdge = view.Edge

// Materialization is σ(T) plus per-node provenance.
type Materialization = view.Materialization

// Policy maps element types to access-control rules; DeriveView turns it
// into a security view.
type Policy = secview.Policy

// PolicyRule is one access-control entry (allow / deny / conditional).
type PolicyRule = secview.Rule

// MFA is a mixed finite state automaton (§4), the compact representation
// of (rewritten) Xreg queries.
type MFA = mfa.MFA

// MFAStats is the size breakdown of an MFA (Theorem 5.1 accounting).
type MFAStats = mfa.Stats

// Engine is a HyPE/OptHyPE evaluator bound to one MFA (§6).
type Engine = hype.Engine

// EngineStats reports pruning and cans statistics of an evaluation run.
type EngineStats = hype.Stats

// Index is the subtree-label index behind OptHyPE and OptHyPE-C.
type Index = hype.Index

// ParallelStats is an EngineStats plus how a shard-parallel run cut the
// document (see Engine.EvalParallel / PreparedQuery.EvalParallelCtx).
type ParallelStats = hype.ParallelStats

// Trace is the capped per-node decision log of a traced HyPE run — the
// EXPLAIN mode of the engine (see PreparedQuery.EvalTraced).
type Trace = hype.Trace

// TraceEvent is one recorded decision of a traced run.
type TraceEvent = hype.TraceEvent

// CompiledStats reports what the compiled evaluation layer (lazy subset
// automaton + bitset AFAs) did during a run: cache sizing, subset states
// built, hit/miss/eviction counters and whether the run fell back to NFA
// simulation. Attached to traced runs (Trace.Compiled) and available from
// Engine.CompiledStats().
type CompiledStats = hype.CompiledStats

// EvalLimits bounds how much work one evaluation may do (visited elements,
// accumulated candidate answers); arm them with PreparedQuery.SetLimits or
// Engine.SetLimits. The zero value is unlimited.
type EvalLimits = hype.Limits

// EvalLimitError reports an evaluation aborted over an exceeded EvalLimits
// budget.
type EvalLimitError = hype.LimitError

// ParseLimits bounds the documents ParseDocumentWithLimits will accept
// (nesting depth, node count, raw bytes). The zero value is unlimited.
type ParseLimits = xmltree.ParseLimits

// ParseLimitError reports an input document refused over an exceeded
// ParseLimits bound.
type ParseLimitError = xmltree.LimitError

// IDsOf returns the document-order IDs of the given nodes — the stable
// node references the serving layer returns to clients.
func IDsOf(ns []*Node) []int { return xmltree.IDsOf(ns) }

// Parsing ----------------------------------------------------------------

// ParseDocument reads an XML document from r.
func ParseDocument(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseDocumentString parses an XML document from a string.
func ParseDocumentString(s string) (*Document, error) { return xmltree.ParseString(s) }

// ParseDocumentWithLimits is ParseDocument with input caps: parsing stops
// with a *ParseLimitError as soon as the document exceeds a bound, so a
// serving daemon can refuse oversized or hostile inputs deterministically.
func ParseDocumentWithLimits(r io.Reader, lim ParseLimits) (*Document, error) {
	return xmltree.ParseWithLimits(r, lim)
}

// ParseDocumentStringWithLimits is ParseDocumentWithLimits for a string.
func ParseDocumentStringWithLimits(s string, lim ParseLimits) (*Document, error) {
	return xmltree.ParseStringWithLimits(s, lim)
}

// Columnar documents and snapshots ---------------------------------------

// BuildColumnar converts a Document into its columnar representation. The
// result evaluates queries via PreparedQuery.EvalColumnarCtx and
// serializes with WriteSnapshot/SaveSnapshot.
func BuildColumnar(d *Document) *ColumnarDocument { return colstore.FromTree(d) }

// WriteSnapshot writes the versioned binary snapshot of cd to w (format:
// docs/SNAPSHOT.md). Snapshots are deterministic — the same document always
// produces the same bytes — and carry a checksum verified on load.
func WriteSnapshot(cd *ColumnarDocument, w io.Writer) error { return cd.WriteSnapshot(w) }

// ReadSnapshot reads a snapshot written by WriteSnapshot, verifying the
// magic, format version, structural invariants and checksum.
func ReadSnapshot(r io.Reader) (*ColumnarDocument, error) { return colstore.ReadSnapshot(r) }

// SaveSnapshot writes cd's snapshot to a file (conventionally named with
// SnapshotFileExt).
func SaveSnapshot(cd *ColumnarDocument, path string) error { return cd.Save(path) }

// LoadSnapshot reads a snapshot file written by SaveSnapshot.
func LoadSnapshot(path string) (*ColumnarDocument, error) { return colstore.Load(path) }

// ParseDTD parses a DTD in the textual format documented in package dtd:
//
//	dtd hospital {
//	  root hospital;
//	  hospital -> department*;
//	  name -> #text;
//	  treatment -> test | medication;
//	}
func ParseDTD(src string) (*DTD, error) { return dtd.Parse(src) }

// ParseQuery parses a regular XPath query, e.g.
//
//	department/patient[(parent/patient)*/visit/treatment/medication/diagnosis/text()='heart disease']/pname
//
// '//' is desugared into (⋃Ele)* per §2.1, so the XPath fragment X embeds
// into Xreg.
func ParseQuery(src string) (Query, error) { return xpath.Parse(src) }

// ParsePred parses a standalone filter expression (the q of Q[q]).
func ParsePred(src string) (Pred, error) { return xpath.ParsePred(src) }

// ParseView parses a view specification that annotates every edge of the
// view DTD with a query over the source DTD:
//
//	view sigma0 {
//	  hospital/patient = department/patient[...];
//	  patient/record   = visit;
//	}
func ParseView(src string, source, target *DTD) (*View, error) {
	return view.Parse(src, source, target)
}

// ParsePolicy parses an access-control policy:
//
//	policy {
//	  deny department, name, doctor;
//	  cond patient = visit/treatment/medication/diagnosis/text()='heart disease';
//	}
func ParsePolicy(src string) (Policy, error) { return secview.ParsePolicy(src) }

// DeriveView derives a security view from an access-control policy over
// the document DTD (the [9]-style module that produces the views the
// rewriter consumes): denied types are walked through — their visible
// descendants are promoted — and conditional types are exposed only where
// their filter holds. Denied cycles surface as Kleene stars, which is why
// security views over recursive DTDs need regular XPath.
func DeriveView(d *DTD, p Policy) (*View, error) { return secview.Derive(d, p) }

// InFragmentX reports whether q lies in the classic XPath fragment X
// (Kleene star only in the form of '//'). X is not closed under rewriting
// over recursive views (Theorem 3.1); Xreg is (Theorem 3.2).
func InFragmentX(q Query) bool { return xpath.InFragmentX(q) }

// Compilation and rewriting ----------------------------------------------

// Compile translates an Xreg query into an equivalent MFA (Theorem 4.1).
func Compile(q Query) (*MFA, error) { return mfa.Compile(q) }

// Rewrite translates a query over the view into an equivalent MFA over the
// source (§5): for every source document T, evaluating the result on T
// returns the source nodes backing Q(σ(T)). The MFA has size
// O(|Q||σ||D_V|) — no exponential blow-up.
func Rewrite(v *View, q Query) (*MFA, error) { return rewrite.Rewrite(v, q) }

// RewriteMFA rewrites an automaton over v.Target into one over v.Source.
// It makes view stacks compose without ever extracting (exponentially
// large) intermediate queries: for σ1 : D → D_V1 and σ2 : D_V1 → D_V2,
//
//	m2, _ := smoqe.Rewrite(σ2, q)       // q over D_V2
//	m, _  := smoqe.RewriteMFA(σ1, m2)   // answers q on σ2(σ1(T)) over T
func RewriteMFA(v *View, m *MFA) (*MFA, error) { return rewrite.RewriteMFA(v, m) }

// Simplify returns an equivalent, usually smaller MFA (ε-chain collapse,
// dead-state elimination, AFA compaction). Rewrite applies it internally;
// it is exposed for automata built by other means.
func Simplify(m *MFA) *MFA { return mfa.Simplify(m) }

// ToXreg extracts an explicit Xreg query equivalent to the MFA (the
// converse of Theorem 4.1, by state elimination). The result can be
// exponentially larger than the automaton — Corollary 3.3's lower bound —
// so extraction takes an AST-size budget (0 for a permissive default) and
// returns an error wrapping mfa.ErrBudget beyond it. Use it for debugging
// and porting, never on the query-answering path.
func ToXreg(m *MFA, budget int) (Query, error) { return mfa.ToXreg(m, budget) }

// ReadMFA deserializes an automaton written with (*MFA).WriteBinary —
// servers cache rewritten automata on disk and load them in evaluator
// replicas without re-running the rewriter.
func ReadMFA(r io.Reader) (*MFA, error) { return mfa.ReadBinary(r) }

// IdentityView returns the identity view over a DTD: σ(T) = T. Rewriting
// over it specializes an automaton to the schema — impossible steps
// disappear, and a result without final states is a static proof that the
// query is empty on every document of the DTD.
func IdentityView(d *DTD) *View { return view.Identity(d) }

// Materialize computes σ(T) with provenance. Query answering through
// Rewrite does not need it; it exists for testing, comparison and export.
func Materialize(v *View, doc *Document) (*Materialization, error) {
	return view.Materialize(v, doc)
}

// Evaluation ---------------------------------------------------------------

// NewEngine returns a HyPE engine for the MFA: single-pass evaluation with
// subtree pruning (§6).
func NewEngine(m *MFA) *Engine { return hype.New(m) }

// NewOptEngine returns an OptHyPE engine: HyPE plus index-driven subtree
// skipping. Build the index from the same document the engine will query.
func NewOptEngine(m *MFA, idx *Index) *Engine { return hype.NewOpt(m, idx) }

// BuildIndex builds the OptHyPE subtree index for a document; with
// compress it hash-conses the per-node label sets (OptHyPE-C), typically
// shrinking the index by an order of magnitude at identical pruning power.
func BuildIndex(doc *Document, compress bool) *Index { return hype.BuildIndex(doc, compress) }

// Eval compiles and evaluates q at ctx with HyPE. For repeated evaluation
// of the same query, compile once and reuse a NewEngine.
func Eval(q Query, ctx *Node) ([]*Node, error) {
	m, err := mfa.Compile(q)
	if err != nil {
		return nil, err
	}
	return hype.New(m).Eval(ctx), nil
}

// EvalString is Eval for a query in concrete syntax.
func EvalString(qsrc string, ctx *Node) ([]*Node, error) {
	q, err := xpath.Parse(qsrc)
	if err != nil {
		return nil, err
	}
	return Eval(q, ctx)
}

// EvalReference evaluates q with the reference set-semantics interpreter
// (the oracle used throughout the test suite).
func EvalReference(q Query, ctx *Node) []*Node { return refeval.Eval(q, ctx) }

// EvalXQueryTranslation evaluates q the way a naive translation to XQuery
// run on a general-purpose engine would: node-at-a-time, materializing and
// re-sorting intermediate sequences, restarting Kleene fixpoints over the
// whole set. It is the paper's Galax baseline stand-in (§7).
func EvalXQueryTranslation(q Query, ctx *Node) []*Node { return xqsim.Eval(q, ctx) }

// EvalTwoPass evaluates q with the classic two-pass strategy (the paper's
// JAXP-class baseline): a full bottom-up filter pass over the tree, then a
// top-down selection pass. Supports all of Xreg.
func EvalTwoPass(q Query, ctx *Node) ([]*Node, error) {
	e, err := twopass.New(q)
	if err != nil {
		return nil, err
	}
	return e.Eval(ctx), nil
}

// Merge combines several MFAs into one batch automaton whose final states
// remember which machine they came from; a single HyPE pass then answers
// all queries at once (Engine.EvalTagged). This is the many-user-groups
// access-control scenario: rewrite each group's query over its view, merge,
// and scan the source once.
func Merge(ms []*MFA) (*MFA, error) { return mfa.Merge(ms) }

// AnswerOnView answers q as if posed on the virtual view v of doc: it
// rewrites q into a source MFA and evaluates it with HyPE on doc. The
// result is the set of source nodes backing Q(σ(doc)); the view itself is
// never materialized.
func AnswerOnView(v *View, q Query, doc *Document) ([]*Node, error) {
	if doc == nil || doc.Root == nil {
		return nil, fmt.Errorf("smoqe: empty document")
	}
	m, err := rewrite.Rewrite(v, q)
	if err != nil {
		return nil, err
	}
	return hype.New(m).Eval(doc.Root), nil
}
